package experiments

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"

	"gridvine/internal/keyspace"
	"gridvine/internal/metrics"
	"gridvine/internal/pgrid"
	"gridvine/internal/simnet"
)

// --- EXP-O: churn stress with digest-based anti-entropy repair ----------

// ChurnStressConfig parameterizes the sustained-churn experiment: a seeded
// simnet.FaultPlan crashes peers every round and restarts them after a
// fixed downtime while a mixed write/delete/query load keeps running. The
// same seeded schedule is replayed twice — once repairing restarted peers
// with digest anti-entropy (Node.SyncFromReplicas / Node.AntiEntropy) and
// once with the full-store pull baseline (Node.FullSyncFromReplicas) — so
// the repair-bandwidth comparison is apples to apples.
type ChurnStressConfig struct {
	Peers           int     // default 96
	ReplicaFactor   int     // default 3
	Rounds          int     // default 24 churn rounds
	CrashPerRound   int     // default 3 peers crashed per round
	DowntimeRounds  int     // default 2 rounds before a crashed peer restarts
	WritesPerRound  int     // default 24
	DeletesPerRound int     // default 4
	QueriesPerRound int     // default 12
	DropRate        float64 // default 0.01 background message loss while churning
	MaxRepairRounds int     // default 8 all-node repair rounds after heal
	Seed            int64
}

func (c ChurnStressConfig) withDefaults() ChurnStressConfig {
	if c.Peers == 0 {
		c.Peers = 96
	}
	if c.ReplicaFactor == 0 {
		c.ReplicaFactor = 3
	}
	if c.Rounds == 0 {
		c.Rounds = 24
	}
	if c.CrashPerRound == 0 {
		c.CrashPerRound = 3
	}
	if c.DowntimeRounds == 0 {
		c.DowntimeRounds = 2
	}
	if c.WritesPerRound == 0 {
		c.WritesPerRound = 24
	}
	if c.DeletesPerRound == 0 {
		c.DeletesPerRound = 4
	}
	if c.QueriesPerRound == 0 {
		c.QueriesPerRound = 12
	}
	if c.DropRate == 0 {
		c.DropRate = 0.01
	}
	if c.MaxRepairRounds == 0 {
		c.MaxRepairRounds = 8
	}
	return c
}

// ChurnStressResult reports the digest-run quality figures (recall under
// churn, degraded answers, post-heal convergence, delete resurrection)
// plus the repair bandwidth of both runs. Repair bytes are gob-encoded
// payload sizes accumulated by the transport's bandwidth model during
// repair calls only, so the comparison isolates what each strategy ships.
type ChurnStressResult struct {
	Peers           int     `json:"peers"`
	ReplicaFactor   int     `json:"replica_factor"`
	Rounds          int     `json:"rounds"`
	Crashes         int     `json:"crashes"`
	Restarts        int     `json:"restarts"`
	Writes          int     `json:"writes"`
	WriteFailures   int     `json:"write_failures"`
	Deletes         int     `json:"deletes"`
	Queries         int     `json:"queries"`
	Recall          float64 `json:"recall"`
	DegradedQueries int     `json:"degraded_queries"`
	FinalRecall     float64 `json:"final_recall"`

	Converged         bool `json:"converged"`
	ConvergenceRounds int  `json:"convergence_rounds"`
	Resurrected       int  `json:"resurrected"`

	DigestRepairBytes    int     `json:"digest_repair_bytes"`
	DigestRepairMessages int     `json:"digest_repair_messages"`
	FullRepairBytes      int     `json:"full_repair_bytes"`
	FullRepairMessages   int     `json:"full_repair_messages"`
	ByteReduction        float64 `json:"byte_reduction"`
}

// churnRun is one scenario execution's raw counters.
type churnRun struct {
	crashes, restarts              int
	writes, writeFailures          int
	deletes, queries               int
	hits, degraded                 int
	finalHits, finalQueries        int
	repairBytes, repairMessages    int
	converged                      bool
	convergenceRounds, resurrected int
}

// RunChurnStress replays the same seeded churn scenario under both repair
// strategies and combines the results.
func RunChurnStress(cfg ChurnStressConfig) (ChurnStressResult, error) {
	cfg = cfg.withDefaults()
	digest, err := runChurnScenario(cfg, false)
	if err != nil {
		return ChurnStressResult{}, err
	}
	fullRun, err := runChurnScenario(cfg, true)
	if err != nil {
		return ChurnStressResult{}, err
	}
	res := ChurnStressResult{
		Peers:           cfg.Peers,
		ReplicaFactor:   cfg.ReplicaFactor,
		Rounds:          cfg.Rounds,
		Crashes:         digest.crashes,
		Restarts:        digest.restarts,
		Writes:          digest.writes,
		WriteFailures:   digest.writeFailures,
		Deletes:         digest.deletes,
		Queries:         digest.queries,
		DegradedQueries: digest.degraded,

		Converged:         digest.converged && fullRun.converged,
		ConvergenceRounds: digest.convergenceRounds,
		Resurrected:       digest.resurrected + fullRun.resurrected,

		DigestRepairBytes:    digest.repairBytes,
		DigestRepairMessages: digest.repairMessages,
		FullRepairBytes:      fullRun.repairBytes,
		FullRepairMessages:   fullRun.repairMessages,
	}
	if digest.queries > 0 {
		res.Recall = float64(digest.hits) / float64(digest.queries)
	}
	if digest.finalQueries > 0 {
		res.FinalRecall = float64(digest.finalHits) / float64(digest.finalQueries)
	}
	if fullRun.repairBytes > 0 {
		res.ByteReduction = 1 - float64(digest.repairBytes)/float64(fullRun.repairBytes)
	}
	return res, nil
}

// gobPayloadBytes is the bandwidth sizer for this experiment: the
// gob-encoded size of the payload, so Stats.PayloadUnits counts bytes
// rather than triples. Every payload type is gob-registered by its
// defining package; anything unencodable still counts one unit so no
// traffic vanishes from the books.
func gobPayloadBytes(payload any) int {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&payload); err != nil {
		return 1
	}
	return buf.Len()
}

// runChurnScenario executes one seeded churn run. With full=false restarted
// peers repair via digest anti-entropy; with full=true they pull complete
// replica stores. The fault schedule, workload, and all random choices
// derive from cfg.Seed, so the two runs face the same churn; only the
// transport-level loss pattern can differ slightly because the repair
// strategies exchange different message sequences.
func runChurnScenario(cfg ChurnStressConfig, full bool) (churnRun, error) {
	var out churnRun
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Diverse sample keys so Build splits the trie evenly.
	sample := make([]keyspace.Key, 0, 400)
	for i := 0; i < 400; i++ {
		sample = append(sample, keyspace.HashDefault(churnWord(rng)))
	}
	net := simnet.NewNetwork()
	ov, err := pgrid.Build(net, pgrid.BuildOptions{
		Peers:         cfg.Peers,
		ReplicaFactor: cfg.ReplicaFactor,
		SampleKeys:    sample,
		Rng:           rng,
	})
	if err != nil {
		return out, err
	}
	net.SetPayloadDelay(0, gobPayloadBytes)

	nodes := ov.Nodes()
	byID := make(map[simnet.PeerID]*pgrid.Node, len(nodes))
	for _, n := range nodes {
		byID[n.ID()] = n
	}
	issuer := nodes[0] // never crashed, so the workload can always be issued

	// Deterministic crash/restart schedule: each round crashes
	// CrashPerRound currently-live peers and restarts them DowntimeRounds
	// later.
	plan := simnet.NewFaultPlan(cfg.Seed + 1)
	plan.SetDropRate(cfg.DropRate)
	net.SetFaultPlan(plan)
	schedRng := rand.New(rand.NewSource(cfg.Seed + 2))
	downUntil := map[simnet.PeerID]int{}
	lastStep := cfg.Rounds
	for r := 1; r <= cfg.Rounds; r++ {
		for c := 0; c < cfg.CrashPerRound; c++ {
			for tries := 0; tries < 20; tries++ {
				v := nodes[1+schedRng.Intn(len(nodes)-1)].ID()
				if downUntil[v] >= r {
					continue
				}
				up := r + cfg.DowntimeRounds
				downUntil[v] = up
				plan.At(r, simnet.Crash(v))
				plan.At(up, simnet.Restart(v))
				if up > lastStep {
					lastStep = up
				}
				break
			}
		}
	}

	ctx := context.Background()
	repair := func(n *pgrid.Node) {
		before := net.Stats()
		if full {
			n.FullSyncFromReplicas()
		} else {
			n.SyncFromReplicas()
		}
		after := net.Stats()
		out.repairBytes += after.PayloadUnits - before.PayloadUnits
		out.repairMessages += after.Messages - before.Messages
	}

	// Mixed workload state: model is the expected key→value view, live the
	// orderable slice of insert-order names, deleted the resurrection probes.
	model := map[string]string{}
	var live []string
	deleted := map[string]string{}
	workRng := rand.New(rand.NewSource(cfg.Seed + 3))
	seq := 0

	for step := 1; step <= lastStep; step++ {
		for _, e := range plan.Step(net) {
			switch e.Kind {
			case simnet.FaultCrash:
				out.crashes++
			case simnet.FaultRestart:
				out.restarts++
				repair(byID[e.Peer])
			}
		}
		if step > cfg.Rounds {
			continue // drain tail restarts past the churn window
		}
		for w := 0; w < cfg.WritesPerRound; w++ {
			name := fmt.Sprintf("churn-%05d-%s", seq, churnWord(workRng))
			val := fmt.Sprintf("v%05d", seq)
			seq++
			if _, err := issuer.Update(ctx, keyspace.HashDefault(name), val); err != nil {
				out.writeFailures++
				continue
			}
			out.writes++
			model[name] = val
			live = append(live, name)
		}
		for d := 0; d < cfg.DeletesPerRound && len(live) > 0; d++ {
			i := workRng.Intn(len(live))
			name := live[i]
			val := model[name]
			if _, err := issuer.Delete(ctx, keyspace.HashDefault(name), val); err != nil {
				continue
			}
			out.deletes++
			delete(model, name)
			deleted[name] = val
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for q := 0; q < cfg.QueriesPerRound && len(live) > 0; q++ {
			name := live[workRng.Intn(len(live))]
			want := model[name]
			vals, route, err := issuer.Retrieve(ctx, keyspace.HashDefault(name))
			out.queries++
			if err != nil {
				continue
			}
			if route.Degraded {
				out.degraded++
			}
			if len(vals) == 1 && vals[0] == want {
				out.hits++
			}
		}
	}

	// Heal: churn is over and background loss stops; run all-node repair
	// rounds until every replica group holds a byte-identical store.
	plan.SetDropRate(0)
	before := net.Stats()
	for round := 1; round <= cfg.MaxRepairRounds; round++ {
		for _, n := range nodes {
			if full {
				n.FullSyncFromReplicas()
			} else {
				n.AntiEntropy(ctx)
			}
		}
		if churnGroupsConverged(nodes) {
			out.converged = true
			out.convergenceRounds = round
			break
		}
	}
	after := net.Stats()
	out.repairBytes += after.PayloadUnits - before.PayloadUnits
	out.repairMessages += after.Messages - before.Messages

	// Resurrection probe: no responsible node may still hold a deleted
	// value after convergence.
	for name, val := range deleted {
		k := keyspace.HashDefault(name)
		for _, n := range nodes {
			if !n.Responsible(k) {
				continue
			}
			found := false
			for _, v := range n.LocalGet(k) {
				if v == val {
					found = true
					break
				}
			}
			if found {
				out.resurrected++
				break
			}
		}
	}

	// Final recall over the healed overlay: every acknowledged live write
	// must be retrievable with its latest value.
	for name, want := range model {
		out.finalQueries++
		vals, _, err := issuer.Retrieve(ctx, keyspace.HashDefault(name))
		if err == nil && len(vals) == 1 && vals[0] == want {
			out.finalHits++
		}
	}
	return out, nil
}

// churnGroupsConverged reports whether every replica group (nodes sharing
// a leaf path) holds a byte-identical store.
func churnGroupsConverged(nodes []*pgrid.Node) bool {
	digests := map[string]uint64{}
	for _, n := range nodes {
		p := n.Path().String()
		d := n.ContentDigest()
		if prev, ok := digests[p]; ok && prev != d {
			return false
		}
		digests[p] = d
	}
	return true
}

// churnWord draws a 10-letter random string (diverse keys, as EXP-H uses).
func churnWord(rng *rand.Rand) string {
	s := make([]byte, 10)
	for i := range s {
		s[i] = byte('a' + rng.Intn(26))
	}
	return string(s)
}

// Table renders the churn-stress figures.
func (r ChurnStressResult) Table() string {
	t := metrics.NewTable("metric", "value")
	t.AddRow("peers / replica factor", fmt.Sprintf("%d / %d", r.Peers, r.ReplicaFactor))
	t.AddRow("churn rounds", fmt.Sprint(r.Rounds))
	t.AddRow("crashes / restarts", fmt.Sprintf("%d / %d", r.Crashes, r.Restarts))
	t.AddRow("writes (failed)", fmt.Sprintf("%d (%d)", r.Writes, r.WriteFailures))
	t.AddRow("deletes", fmt.Sprint(r.Deletes))
	t.AddRow("queries", fmt.Sprint(r.Queries))
	t.AddRow("recall under churn", fmt.Sprintf("%.1f%%", 100*r.Recall))
	t.AddRow("degraded answers", fmt.Sprint(r.DegradedQueries))
	t.AddRow("final recall", fmt.Sprintf("%.1f%%", 100*r.FinalRecall))
	t.AddRow("converged", fmt.Sprintf("%v (%d rounds)", r.Converged, r.ConvergenceRounds))
	t.AddRow("resurrected deletes", fmt.Sprint(r.Resurrected))
	t.AddRow("digest repair", fmt.Sprintf("%d bytes / %d msgs", r.DigestRepairBytes, r.DigestRepairMessages))
	t.AddRow("full-store repair", fmt.Sprintf("%d bytes / %d msgs", r.FullRepairBytes, r.FullRepairMessages))
	t.AddRow("byte reduction", fmt.Sprintf("%.1f%%", 100*r.ByteReduction))
	return t.String()
}
