// Package wire is gridvine's client/server protocol: a compact
// length-prefixed, checksummed frame stream over TCP. All query and
// write logic stays server-side (the daemon hosts the mediation
// peers); clients are thin — they frame requests, demultiplex
// responses by request ID, and reassemble streamed row chunks into a
// cursor.
//
// Frame layout (little-endian):
//
//	[1B type][4B payload length][4B CRC32C of payload][payload]
//
// The payload is a self-contained gob stream of the frame type's
// message struct (a fresh encoder per frame, like the store WAL), so
// a corrupt frame never poisons its neighbours and any frame decodes
// in isolation.
//
// Request/response shapes:
//
//   - Query → zero or more RowChunk frames, then exactly one Trailer
//     carrying the terminal error, the output columns, and the
//     execution stats (including the Degraded flag) — the wire image
//     of mediation.Cursor.Stats().
//   - Write → exactly one Receipt.
//   - Cancel (client → server) propagates context cancellation: the
//     server cancels the request's engine context, and the stream
//     still terminates with its Trailer/Receipt.
//   - StatsReq → DaemonStats; DumpReq → Dump (ops surface).
//
// Frames of different requests interleave freely on one connection;
// the ID field pairs them up.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"gridvine/internal/mediation"
	"gridvine/internal/schema"
	"gridvine/internal/triple"
)

// Type identifies a frame's payload shape.
type Type uint8

// Frame types. The zero value is invalid so an all-zero header never
// parses as a frame.
const (
	TQuery Type = 1 + iota
	TRowChunk
	TTrailer
	TWrite
	TReceipt
	TCancel
	TStatsReq
	TStats
	TDumpReq
	TDump
	maxType = TDump
)

const (
	// frameHeader is 1 byte type + 4 bytes payload length + 4 bytes
	// CRC32C, all little-endian.
	frameHeader = 9
	// MaxPayload bounds a claimed payload length so a corrupt or
	// hostile header cannot demand an absurd allocation.
	MaxPayload = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame wraps every decoding failure caused by frame content
// (bad type, oversized length, checksum mismatch, gob garbage) as
// opposed to a short read.
var ErrBadFrame = errors.New("wire: bad frame")

// ErrShortFrame reports that data ends mid-frame: not an error on a
// live stream (more bytes may arrive), fatal at end of input.
var ErrShortFrame = errors.New("wire: truncated frame")

// Query asks a daemon to execute one mediation query. Exactly one of
// Pattern, Patterns, RDQL must be set (mediation validates). Peer
// selects a hosted peer by ID; empty lets the server pick.
type Query struct {
	ID          uint64
	Peer        string
	Pattern     *triple.Pattern
	Patterns    []triple.Pattern
	RDQL        string
	Reformulate bool
	Limit       int
	Options     mediation.SearchOptions
}

// RowChunk carries a batch of streamed rows. Columns rides the first
// chunk (and the trailer) once the engine knows the output schema.
type RowChunk struct {
	ID      uint64
	Columns []string
	Rows    [][]string
}

// Stats is the wire image of mediation.QueryStats — the fields a thin
// client needs, with durations flattened to microseconds.
type Stats struct {
	Rows           int
	Messages       int
	Reformulations int
	Degraded       bool
	FirstRowMicros int64
	ElapsedMicros  int64
}

// Trailer terminates a query stream: the terminal error (empty = clean
// exhaustion), the final output columns, and the execution stats.
type Trailer struct {
	ID      uint64
	Err     string
	Columns []string
	Stats   Stats
}

// Write asks a daemon to apply one mediation batch. Replacements pair
// old/updated mappings positionally.
type Write struct {
	ID          uint64
	Peer        string
	Inserts     []triple.Triple
	Deletes     []triple.Triple
	Schemas     []schema.Schema
	Mappings    []schema.Mapping
	ReplaceOld  []schema.Mapping
	ReplaceNew  []schema.Mapping
	Parallelism int
}

// Receipt is the wire image of mediation.Receipt. Err reports a
// request-level failure (unknown peer, engine error); EntryErrs
// carries the first few per-entry failure messages.
type Receipt struct {
	ID        uint64
	Err       string
	Applied   int
	Failed    int
	Skipped   int
	Groups    int
	Messages  int
	EntryErrs []string
}

// Cancel propagates a client context cancellation to the server-side
// engine context of request ID.
type Cancel struct {
	ID uint64
}

// StatsReq asks for the daemon's operational counters.
type StatsReq struct {
	ID uint64
}

// DaemonStats is a daemon's operational snapshot.
type DaemonStats struct {
	ID            uint64
	Daemon        int
	Peers         []string
	UptimeMillis  int64
	Draining      bool
	ActiveConns   int
	ConnsRejected uint64
	ActiveQueries int
	ActiveWrites  int
	QueriesServed uint64
	WritesServed  uint64
	RowsStreamed  uint64
	// Composite-closure cache counters, summed over the hosted peers.
	ComposeHits          uint64
	ComposeMisses        uint64
	ComposeInvalidations uint64
	ComposeEntries       int
}

// DumpReq asks for per-peer store dumps; Peer narrows to one hosted
// peer, empty dumps all.
type DumpReq struct {
	ID   uint64
	Peer string
}

// PeerDump describes one hosted peer's store: trie path, triple-store
// size, the order-independent content digest (the restart-equivalence
// fingerprint), and the WAL's durable sequence number.
type PeerDump struct {
	ID      string
	Path    string
	Triples int
	Digest  uint64
	WALSeq  uint64
}

// Dump answers a DumpReq.
type Dump struct {
	ID    uint64
	Err   string
	Peers []PeerDump
}

// payloadFor returns a fresh payload struct for a frame type, nil for
// unknown types.
func payloadFor(t Type) any {
	switch t {
	case TQuery:
		return &Query{}
	case TRowChunk:
		return &RowChunk{}
	case TTrailer:
		return &Trailer{}
	case TWrite:
		return &Write{}
	case TReceipt:
		return &Receipt{}
	case TCancel:
		return &Cancel{}
	case TStatsReq:
		return &StatsReq{}
	case TStats:
		return &DaemonStats{}
	case TDumpReq:
		return &DumpReq{}
	case TDump:
		return &Dump{}
	}
	return nil
}

// EncodeFrame gob-encodes msg and wraps it in a frame.
func EncodeFrame(t Type, msg any) ([]byte, error) {
	var body bytes.Buffer
	body.Write(make([]byte, frameHeader))
	if err := gob.NewEncoder(&body).Encode(msg); err != nil {
		return nil, fmt.Errorf("wire: encode %T: %w", msg, err)
	}
	buf := body.Bytes()
	payload := buf[frameHeader:]
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("wire: %T payload %d exceeds MaxPayload", msg, len(payload))
	}
	buf[0] = byte(t)
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[5:9], crc32.Checksum(payload, crcTable))
	return buf, nil
}

// DecodeFrame parses one frame from the front of data, returning the
// frame type, its raw payload (a sub-slice of data — no copy, no
// allocation), and the bytes consumed. A frame that cannot be complete
// yet yields ErrShortFrame; corrupt content yields ErrBadFrame.
func DecodeFrame(data []byte) (t Type, payload []byte, n int, err error) {
	if len(data) < frameHeader {
		return 0, nil, 0, ErrShortFrame
	}
	t = Type(data[0])
	if t == 0 || t > maxType {
		return 0, nil, 0, fmt.Errorf("%w: unknown type %d", ErrBadFrame, data[0])
	}
	length := binary.LittleEndian.Uint32(data[1:5])
	if length > MaxPayload {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, length, MaxPayload)
	}
	total := frameHeader + int(length)
	if len(data) < total {
		return 0, nil, 0, ErrShortFrame
	}
	payload = data[frameHeader:total]
	if crc := crc32.Checksum(payload, crcTable); crc != binary.LittleEndian.Uint32(data[5:9]) {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	return t, payload, total, nil
}

// DecodeMessage decodes a frame payload into its message struct. The
// returned value is one of the pointer types payloadFor hands out.
func DecodeMessage(t Type, payload []byte) (any, error) {
	msg := payloadFor(t)
	if msg == nil {
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, t)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(msg); err != nil {
		return nil, fmt.Errorf("%w: gob: %v", ErrBadFrame, err)
	}
	return msg, nil
}

// ReadFrame reads one frame from r and decodes its payload. The
// payload buffer grows with the bytes actually read (capped chunks),
// so a hostile length claim cannot force a large allocation up front.
func ReadFrame(r io.Reader) (Type, any, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, ErrShortFrame
		}
		return 0, nil, err
	}
	t := Type(hdr[0])
	if t == 0 || t > maxType {
		return 0, nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, hdr[0])
	}
	length := binary.LittleEndian.Uint32(hdr[1:5])
	if length > MaxPayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, length, MaxPayload)
	}
	payload, err := readPayload(r, int(length))
	if err != nil {
		return 0, nil, err
	}
	if crc := crc32.Checksum(payload, crcTable); crc != binary.LittleEndian.Uint32(hdr[5:9]) {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	msg, err := DecodeMessage(t, payload)
	if err != nil {
		return 0, nil, err
	}
	return t, msg, nil
}

// readPayload reads exactly n bytes, growing the buffer in bounded
// chunks so allocation tracks data actually received.
func readPayload(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		m := min(n-len(buf), chunk)
		off := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				return nil, ErrShortFrame
			}
			return nil, err
		}
	}
	return buf, nil
}

// MessageID extracts the request ID every wire message carries.
func MessageID(msg any) uint64 {
	switch m := msg.(type) {
	case *Query:
		return m.ID
	case *RowChunk:
		return m.ID
	case *Trailer:
		return m.ID
	case *Write:
		return m.ID
	case *Receipt:
		return m.ID
	case *Cancel:
		return m.ID
	case *StatsReq:
		return m.ID
	case *DaemonStats:
		return m.ID
	case *DumpReq:
		return m.ID
	case *Dump:
		return m.ID
	}
	return 0
}
