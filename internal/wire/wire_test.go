package wire_test

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"gridvine"
	"gridvine/internal/mediation"
	"gridvine/internal/triple"
	"gridvine/internal/wire"
)

// testServer hosts every peer of a deterministic in-memory network
// behind a real TCP wire server, pre-loaded with a small triple set.
func testServer(t *testing.T, triples []triple.Triple) (*gridvine.Network, *wire.Server, string) {
	t.Helper()
	nw, err := gridvine.NewNetwork(gridvine.Options{Peers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	if len(triples) > 0 {
		var b mediation.Batch
		for _, tr := range triples {
			b.InsertTriple(tr)
		}
		rec, err := nw.Peer(0).Write(context.Background(), &b)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Failed != 0 || rec.Skipped != 0 {
			t.Fatalf("seed write: %d failed, %d skipped", rec.Failed, rec.Skipped)
		}
	}

	var hosted []wire.Hosted
	for _, p := range nw.Peers() {
		node := p.Node()
		hosted = append(hosted, wire.Hosted{
			Peer:   p.Peer,
			Digest: node.ContentDigest,
		})
	}
	srv := wire.NewServer(0, hosted)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return nw, srv, ln.Addr().String()
}

func seedTriples(n int) []triple.Triple {
	out := make([]triple.Triple, 0, n)
	for i := 0; i < n; i++ {
		// 7 subjects against 3 predicates (coprime) so every subject
		// carries every predicate — the conjunctive join is non-empty.
		out = append(out, triple.Triple{
			Subject:   fmt.Sprintf("urn:s%d", i%7),
			Predicate: fmt.Sprintf("Base#p%d", i%3),
			Object:    fmt.Sprintf("o%d", i),
		})
	}
	return out
}

// drainWire collects every row of a wire query, sorted.
func drainWire(t *testing.T, c *wire.Client, q wire.Query) ([][]string, wire.Stats) {
	t.Helper()
	ctx := context.Background()
	cur, err := c.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]string
	for {
		row, ok := cur.Next(ctx)
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("wire query failed: %v", err)
	}
	sortRows(rows)
	return rows, cur.Stats()
}

// drainInProcess collects every row of the equivalent in-process
// query, sorted.
func drainInProcess(t *testing.T, p *gridvine.Peer, req mediation.Request) [][]string {
	t.Helper()
	ctx := context.Background()
	cur, err := p.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]string
	for {
		row, ok := cur.Next(ctx)
		if !ok {
			break
		}
		rows = append(rows, row.Values)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("in-process query failed: %v", err)
	}
	sortRows(rows)
	return rows
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		return strings.Join(rows[i], "\x00") < strings.Join(rows[j], "\x00")
	})
}

func rowsEqual(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestWireQueryMatchesInProcess is the round-trip property of the
// satellite: for every query shape, the rows a thin client receives
// over the wire are byte-identical to the rows the hosting peer's
// in-process Cursor yields.
func TestWireQueryMatchesInProcess(t *testing.T) {
	nw, _, addr := testServer(t, seedTriples(40))
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	peerID := string(nw.Peer(3).Node().ID())
	pat := triple.Pattern{S: triple.Var("s"), P: triple.Const("Base#p1"), O: triple.Var("o")}
	cases := []struct {
		name string
		q    wire.Query
		req  mediation.Request
	}{
		{
			name: "pattern",
			q:    wire.Query{Peer: peerID, Pattern: &pat},
			req:  mediation.Request{Pattern: &pat},
		},
		{
			name: "pattern-reformulate-limited",
			q:    wire.Query{Peer: peerID, Pattern: &pat, Reformulate: true, Limit: 5},
			req:  mediation.Request{Pattern: &pat, Reformulate: true, Limit: 5},
		},
		{
			name: "conjunctive-rdql",
			q:    wire.Query{Peer: peerID, RDQL: `SELECT ?s, ?o WHERE (?s, <Base#p0>, ?x), (?s, <Base#p1>, ?o)`},
			req:  mediation.Request{RDQL: `SELECT ?s, ?o WHERE (?s, <Base#p0>, ?x), (?s, <Base#p1>, ?o)`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, stats := drainWire(t, c, tc.q)
			want := drainInProcess(t, nw.Peer(3), tc.req)
			if len(want) == 0 && tc.name != "pattern-reformulate-limited" {
				t.Fatalf("degenerate case: in-process query returned no rows")
			}
			if !rowsEqual(got, want) {
				t.Fatalf("wire rows != in-process rows:\n wire: %v\n proc: %v", got, want)
			}
			if stats.Rows != len(got) {
				t.Fatalf("trailer stats.Rows = %d, streamed %d", stats.Rows, len(got))
			}
		})
	}
}

// TestWireWriteReceipt proves the write path round-trips: a wire batch
// lands (receipt accounts every entry), its rows are queryable over
// the wire, and a follow-up delete removes them.
func TestWireWriteReceipt(t *testing.T) {
	_, _, addr := testServer(t, nil)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	ts := []triple.Triple{
		{Subject: "urn:w1", Predicate: "W#p", Object: "a"},
		{Subject: "urn:w2", Predicate: "W#p", Object: "b"},
		{Subject: "urn:w3", Predicate: "W#p", Object: "c"},
	}
	rec, err := c.Write(ctx, wire.Write{Inserts: ts})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Applied != len(ts) || rec.Failed != 0 || rec.Skipped != 0 {
		t.Fatalf("receipt = %+v, want %d applied", rec, len(ts))
	}
	if rec.Groups == 0 || rec.Messages == 0 {
		t.Fatalf("receipt carries no shipping stats: %+v", rec)
	}

	pat := triple.Pattern{S: triple.Var("s"), P: triple.Const("W#p"), O: triple.Var("o")}
	rows, _ := drainWire(t, c, wire.Query{Pattern: &pat})
	if len(rows) != len(ts) {
		t.Fatalf("after insert, query returned %d rows, want %d", len(rows), len(ts))
	}

	rec, err = c.Write(ctx, wire.Write{Deletes: ts[:1]})
	if err != nil || rec.Applied != 1 {
		t.Fatalf("delete receipt = %+v, err %v", rec, err)
	}
	rows, _ = drainWire(t, c, wire.Query{Pattern: &pat})
	if len(rows) != len(ts)-1 {
		t.Fatalf("after delete, query returned %d rows, want %d", len(rows), len(ts)-1)
	}
}

// TestWireCancelReleasesServer proves a client Close propagates as a
// Cancel frame that tears down the server-side engine: the daemon's
// active-query gauge returns to zero even though the stream was
// abandoned mid-flight.
func TestWireCancelReleasesServer(t *testing.T) {
	_, _, addr := testServer(t, seedTriples(200))
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	pat := triple.Pattern{S: triple.Var("s"), P: triple.Const("Base#p0"), O: triple.Var("o")}
	cur, err := c.Query(ctx, wire.Query{Pattern: &pat})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(ctx); !ok {
		t.Fatalf("no first row: %v", cur.Err())
	}
	cur.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.ActiveQueries == 0 {
			if st.QueriesServed == 0 || len(st.Peers) != 8 {
				t.Fatalf("implausible stats after cancel: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server still reports %d active queries after cursor close", st.ActiveQueries)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWireDumpDigests proves the dump surface reports per-peer content
// digests that match the hosted nodes' own.
func TestWireDumpDigests(t *testing.T) {
	nw, _, addr := testServer(t, seedTriples(40))
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	d, err := c.Dump(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Peers) != nw.NumPeers() {
		t.Fatalf("dump covers %d peers, want %d", len(d.Peers), nw.NumPeers())
	}
	byID := map[string]wire.PeerDump{}
	total := 0
	for _, pd := range d.Peers {
		byID[pd.ID] = pd
		total += pd.Triples
	}
	if total == 0 {
		t.Fatal("dump reports an empty cluster after seeding")
	}
	for _, p := range nw.Peers() {
		pd, ok := byID[string(p.Node().ID())]
		if !ok {
			t.Fatalf("peer %s missing from dump", p.Node().ID())
		}
		if pd.Digest != p.Node().ContentDigest() {
			t.Fatalf("peer %s dump digest %x != node digest %x", pd.ID, pd.Digest, p.Node().ContentDigest())
		}
		if pd.Path != p.Node().Path().String() {
			t.Fatalf("peer %s dump path %q != node path %q", pd.ID, pd.Path, p.Node().Path())
		}
	}
}

// TestWireShutdownDrainsInFlight proves Shutdown waits for a running
// stream: rows keep flowing to completion while new requests are
// rejected with a draining trailer.
func TestWireShutdownDrains(t *testing.T) {
	_, srv, addr := testServer(t, seedTriples(120))
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	pat := triple.Pattern{S: triple.Var("s"), P: triple.Const("Base#p2"), O: triple.Var("o")}
	cur, err := c.Query(ctx, wire.Query{Pattern: &pat})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Next(ctx); !ok {
		t.Fatalf("no first row: %v", cur.Err())
	}

	done := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()

	// The in-flight stream must drain cleanly while shutdown waits.
	n := 1
	for {
		_, ok := cur.Next(ctx)
		if !ok {
			break
		}
		n++
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("in-flight stream failed during drain: %v", err)
	}
	if n < 2 {
		t.Fatalf("drained only %d rows", n)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
}

// TestWireMaxConns pins the connection cap: the server turns the
// over-cap connection away with a readable error, keeps serving the
// connections already admitted, and frees the slot when an admitted
// connection leaves.
func TestWireMaxConns(t *testing.T) {
	nw, err := gridvine.NewNetwork(gridvine.Options{Peers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	var hosted []wire.Hosted
	for _, p := range nw.Peers() {
		hosted = append(hosted, wire.Hosted{Peer: p.Peer})
	}
	srv := wire.NewServerOptions(0, hosted, wire.Options{MaxConns: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	addr := ln.Addr().String()
	ctx := context.Background()

	dial := func() *wire.Client {
		t.Helper()
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		return c
	}
	c1, c2 := dial(), dial()
	defer c1.Close() //nolint:errcheck
	defer c2.Close() //nolint:errcheck
	if _, err := c1.Stats(ctx); err != nil {
		t.Fatalf("first client: %v", err)
	}
	if _, err := c2.Stats(ctx); err != nil {
		t.Fatalf("second client: %v", err)
	}

	// The third connection is over the cap: its first call must fail
	// with the server's stated reason, not a bare EOF.
	c3 := dial()
	defer c3.Close() //nolint:errcheck
	if _, err := c3.Stats(ctx); err == nil || !strings.Contains(err.Error(), "connection limit reached") {
		t.Fatalf("over-cap call error = %v, want connection limit reached", err)
	}

	// The admitted connections keep working, and the rejection shows up
	// in the stats they can still fetch.
	st, err := c1.Stats(ctx)
	if err != nil {
		t.Fatalf("admitted client after rejection: %v", err)
	}
	if st.ConnsRejected < 1 {
		t.Errorf("ConnsRejected = %d, want >= 1", st.ConnsRejected)
	}
	if st.ActiveConns != 2 {
		t.Errorf("ActiveConns = %d, want 2", st.ActiveConns)
	}
	if _, err := c2.Stats(ctx); err != nil {
		t.Fatalf("second admitted client after rejection: %v", err)
	}

	// Releasing an admitted connection frees its slot; the server-side
	// reap is asynchronous, so poll briefly.
	c2.Close() //nolint:errcheck
	deadline := time.Now().Add(5 * time.Second)
	for {
		c4 := dial()
		_, err := c4.Stats(ctx)
		c4.Close() //nolint:errcheck
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
