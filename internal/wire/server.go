package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridvine/internal/mediation"
)

// chunkRows is how many rows ride one RowChunk frame.
const chunkRows = 128

// Hosted is one peer a Server exposes, plus the daemon-level probes
// the dump surface needs (nil probes report zero).
type Hosted struct {
	Peer *mediation.Peer
	// Digest returns the peer's order-independent store content digest
	// (pgrid.Node.ContentDigest) — the restart-equivalence fingerprint.
	Digest func() uint64
	// WALSeq returns the peer journal's durable sequence number.
	WALSeq func() uint64
}

// Options tunes a server's connection handling.
type Options struct {
	// MaxConns caps concurrently served client connections. A connection
	// accepted past the cap is turned away with a connection-level error
	// frame (a Trailer with ID 0) and closed; connections already being
	// served are unaffected. 0 means unlimited.
	MaxConns int
}

// Server speaks the wire protocol on behalf of a set of hosted
// mediation peers. All engine work runs server-side; each Query/Write
// frame gets its own goroutine and its own engine context, cancelled
// by a Cancel frame, a connection loss, or server shutdown.
type Server struct {
	daemon  int
	opts    Options
	hosted  map[string]Hosted
	order   []string
	started time.Time

	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	reqs     sync.WaitGroup // in-flight Query/Write handlers
	connWg   sync.WaitGroup // connection read loops

	rr            atomic.Uint64
	activeQueries atomic.Int64
	activeWrites  atomic.Int64
	queriesServed atomic.Uint64
	writesServed  atomic.Uint64
	rowsStreamed  atomic.Uint64
	connsRejected atomic.Uint64
}

// NewServer builds a server over the given hosted peers with default
// options. daemon is the daemon's cluster index, reported in stats.
func NewServer(daemon int, hosted []Hosted) *Server {
	return NewServerOptions(daemon, hosted, Options{})
}

// NewServerOptions builds a server over the given hosted peers.
func NewServerOptions(daemon int, hosted []Hosted, opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		daemon:    daemon,
		opts:      opts,
		hosted:    make(map[string]Hosted, len(hosted)),
		started:   time.Now(),
		baseCtx:   ctx,
		cancelAll: cancel,
		conns:     map[net.Conn]struct{}{},
	}
	for _, h := range hosted {
		id := string(h.Peer.Node().ID())
		s.hosted[id] = h
		s.order = append(s.order, id)
	}
	return s
}

// Serve accepts connections on ln until the listener closes (Shutdown
// closes it). It returns after the accept loop exits; connection read
// loops keep running until Shutdown reaps them.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			continue
		}
		if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
			s.connsRejected.Add(1)
			s.mu.Unlock()
			// Turn the connection away off the accept loop so a slow
			// rejected client cannot stall admission of others.
			go rejectConn(c)
			continue
		}
		s.conns[c] = struct{}{}
		s.connWg.Add(1)
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Shutdown drains the server: stop accepting connections and new
// requests, wait for every in-flight Query stream and Write to finish
// (their frames flushed), then hard-cancel anything still running when
// ctx fires. It returns nil on a clean drain, ctx.Err() if the drain
// was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.reqs.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll()
		<-done
	}

	// In-flight work is gone; tear down the connections so read loops
	// exit, and cancel the base context for good measure.
	s.cancelAll()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWg.Wait()
	return err
}

// rejectConn tells a turned-away client why before hanging up: a
// connection-level Trailer (ID 0, which no request ever uses) whose
// error the client surfaces as the connection failure. Best-effort —
// the deadline keeps an unread socket from pinning the goroutine.
func rejectConn(c net.Conn) {
	if buf, err := EncodeFrame(TTrailer, &Trailer{Err: "wire: connection limit reached"}); err == nil {
		c.SetWriteDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
		c.Write(buf)                                        //nolint:errcheck
	}
	c.Close()
}

// beginReq registers an in-flight request unless the server is
// draining. The draining check and the WaitGroup Add share the mutex
// so no request can slip in after Shutdown started waiting.
func (s *Server) beginReq() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.reqs.Add(1)
	return true
}

// pick resolves a request's peer selector: a hosted peer ID, or empty
// for round-robin over the hosted set.
func (s *Server) pick(id string) (Hosted, error) {
	if id == "" {
		n := s.rr.Add(1)
		return s.hosted[s.order[int(n)%len(s.order)]], nil
	}
	h, ok := s.hosted[id]
	if !ok {
		return Hosted{}, fmt.Errorf("wire: peer %q not hosted here", id)
	}
	return h, nil
}

// srvConn is one client connection's server-side state: a write mutex
// serialising response frames and the in-flight request registry the
// Cancel frames act on.
type srvConn struct {
	s *Server
	c net.Conn

	wmu sync.Mutex

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc
}

func (s *Server) serveConn(c net.Conn) {
	defer s.connWg.Done()
	sc := &srvConn{s: s, c: c, inflight: map[uint64]context.CancelFunc{}}
	defer func() {
		// Connection gone: cancel everything it had in flight so
		// abandoned engines stop promptly.
		sc.mu.Lock()
		for _, cancel := range sc.inflight {
			cancel()
		}
		sc.mu.Unlock()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	for {
		_, msg, err := ReadFrame(br)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *Query:
			if !s.beginReq() {
				sc.send(TTrailer, &Trailer{ID: m.ID, Err: "wire: server draining"})
				continue
			}
			go sc.handleQuery(m)
		case *Write:
			if !s.beginReq() {
				sc.send(TReceipt, &Receipt{ID: m.ID, Err: "wire: server draining"})
				continue
			}
			go sc.handleWrite(m)
		case *Cancel:
			sc.mu.Lock()
			if cancel, ok := sc.inflight[m.ID]; ok {
				cancel()
			}
			sc.mu.Unlock()
		case *StatsReq:
			sc.send(TStats, sc.s.statsSnapshot(m.ID))
		case *DumpReq:
			sc.send(TDump, sc.s.dump(m))
		default:
			// Server-bound connections must not carry response frames;
			// drop the connection rather than guess.
			return
		}
	}
}

// send encodes and writes one frame under the connection's write
// mutex, so concurrently streaming requests interleave whole frames.
func (sc *srvConn) send(t Type, msg any) error {
	buf, err := EncodeFrame(t, msg)
	if err != nil {
		return err
	}
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	_, err = sc.c.Write(buf)
	return err
}

// track registers a request's engine cancel func; the returned func
// unregisters and cancels it.
func (sc *srvConn) track(id uint64, cancel context.CancelFunc) func() {
	sc.mu.Lock()
	sc.inflight[id] = cancel
	sc.mu.Unlock()
	return func() {
		sc.mu.Lock()
		delete(sc.inflight, id)
		sc.mu.Unlock()
		cancel()
	}
}

func (sc *srvConn) handleQuery(q *Query) {
	s := sc.s
	defer s.reqs.Done()
	s.activeQueries.Add(1)
	defer s.activeQueries.Add(-1)
	defer s.queriesServed.Add(1)

	h, err := s.pick(q.Peer)
	if err != nil {
		sc.send(TTrailer, &Trailer{ID: q.ID, Err: err.Error()})
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer sc.track(q.ID, cancel)()

	cur, err := h.Peer.Query(ctx, mediation.Request{
		Pattern:     q.Pattern,
		Patterns:    q.Patterns,
		RDQL:        q.RDQL,
		Reformulate: q.Reformulate,
		Limit:       q.Limit,
		Options:     q.Options,
	})
	if err != nil {
		sc.send(TTrailer, &Trailer{ID: q.ID, Err: err.Error()})
		return
	}
	defer cur.Close()

	rows := make([][]string, 0, chunkRows)
	sentCols := false
	flush := func() bool {
		if len(rows) == 0 {
			return true
		}
		chunk := &RowChunk{ID: q.ID, Rows: rows}
		if !sentCols {
			chunk.Columns = cur.Columns()
			sentCols = true
		}
		s.rowsStreamed.Add(uint64(len(rows)))
		if err := sc.send(TRowChunk, chunk); err != nil {
			return false
		}
		rows = make([][]string, 0, chunkRows)
		return true
	}
	for {
		row, ok := cur.Next(ctx)
		if !ok {
			break
		}
		rows = append(rows, row.Values)
		if len(rows) >= chunkRows && !flush() {
			return
		}
	}
	if !flush() {
		return
	}
	cur.Close()
	st := cur.Stats()
	tr := &Trailer{
		ID:      q.ID,
		Columns: cur.Columns(),
		Stats: Stats{
			Rows:           st.Rows,
			Messages:       st.Messages,
			Reformulations: st.Reformulations,
			Degraded:       st.Degraded,
			FirstRowMicros: st.FirstRow.Microseconds(),
			ElapsedMicros:  st.Elapsed.Microseconds(),
		},
	}
	if err := cur.Err(); err != nil {
		tr.Err = err.Error()
	}
	sc.send(TTrailer, tr)
}

func (sc *srvConn) handleWrite(w *Write) {
	s := sc.s
	defer s.reqs.Done()
	s.activeWrites.Add(1)
	defer s.activeWrites.Add(-1)
	defer s.writesServed.Add(1)

	h, err := s.pick(w.Peer)
	if err != nil {
		sc.send(TReceipt, &Receipt{ID: w.ID, Err: err.Error()})
		return
	}
	if len(w.ReplaceOld) != len(w.ReplaceNew) {
		sc.send(TReceipt, &Receipt{ID: w.ID, Err: "wire: replacement old/new length mismatch"})
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer sc.track(w.ID, cancel)()

	var b mediation.Batch
	b.Parallelism = w.Parallelism
	for _, t := range w.Inserts {
		b.InsertTriple(t)
	}
	for _, t := range w.Deletes {
		b.DeleteTriple(t)
	}
	for _, sch := range w.Schemas {
		b.PublishSchema(sch)
	}
	for _, m := range w.Mappings {
		b.PublishMapping(m)
	}
	for i := range w.ReplaceOld {
		b.ReplaceMapping(w.ReplaceOld[i], w.ReplaceNew[i])
	}

	rec, err := h.Peer.Write(ctx, &b)
	out := &Receipt{ID: w.ID}
	if err != nil {
		out.Err = err.Error()
	}
	if rec != nil {
		out.Applied = rec.Applied
		out.Failed = rec.Failed
		out.Skipped = rec.Skipped
		out.Groups = rec.Groups
		out.Messages = rec.Route.Messages
		for _, e := range rec.Entries {
			if e.Err != nil && len(out.EntryErrs) < 8 {
				out.EntryErrs = append(out.EntryErrs, e.Err.Error())
			}
		}
	}
	sc.send(TReceipt, out)
}

func (s *Server) statsSnapshot(id uint64) *DaemonStats {
	s.mu.Lock()
	draining := s.draining
	activeConns := len(s.conns)
	s.mu.Unlock()
	out := &DaemonStats{
		ID:            id,
		Daemon:        s.daemon,
		Peers:         append([]string(nil), s.order...),
		UptimeMillis:  time.Since(s.started).Milliseconds(),
		Draining:      draining,
		ActiveConns:   activeConns,
		ConnsRejected: s.connsRejected.Load(),
		ActiveQueries: int(s.activeQueries.Load()),
		ActiveWrites:  int(s.activeWrites.Load()),
		QueriesServed: s.queriesServed.Load(),
		WritesServed:  s.writesServed.Load(),
		RowsStreamed:  s.rowsStreamed.Load(),
	}
	for _, pid := range s.order {
		cs := s.hosted[pid].Peer.ComposeStats()
		out.ComposeHits += cs.Hits
		out.ComposeMisses += cs.Misses
		out.ComposeInvalidations += cs.Invalidations
		out.ComposeEntries += cs.Entries
	}
	return out
}

func (s *Server) dump(req *DumpReq) *Dump {
	out := &Dump{ID: req.ID}
	ids := s.order
	if req.Peer != "" {
		if _, ok := s.hosted[req.Peer]; !ok {
			out.Err = fmt.Sprintf("wire: peer %q not hosted here", req.Peer)
			return out
		}
		ids = []string{req.Peer}
	}
	for _, id := range ids {
		h := s.hosted[id]
		pd := PeerDump{
			ID:      id,
			Path:    h.Peer.Node().Path().String(),
			Triples: h.Peer.DB().Len(),
		}
		if h.Digest != nil {
			pd.Digest = h.Digest()
		}
		if h.WALSeq != nil {
			pd.WALSeq = h.WALSeq()
		}
		out.Peers = append(out.Peers, pd)
	}
	return out
}
