package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClientClosed terminates every pending call when the connection
// read loop exits (Close, network error, or server teardown).
var ErrClientClosed = errors.New("wire: connection closed")

// Client is one wire connection. It is safe for concurrent use:
// requests multiplex over the connection by ID and a demux read loop
// routes response frames to their callers. Note the shared-fate
// caveat of multiplexing: a caller that stops draining its Cursor
// stalls the read loop (and so every other request on this
// connection) until it resumes or closes.
type Client struct {
	c net.Conn

	wmu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan any
	err     error
}

// Dial connects to a daemon's client address.
func Dial(addr string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	cl := &Client{c: c, pending: map[uint64]chan any{}}
	go cl.readLoop()
	return cl, nil
}

// Close tears down the connection; every pending call fails with
// ErrClientClosed.
func (c *Client) Close() error { return c.c.Close() }

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.c, 64<<10)
	for {
		_, msg, err := ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClientClosed, err))
			return
		}
		id := MessageID(msg)
		if id == 0 {
			// Connection-level trailer: the server turned this connection
			// away (request IDs start at 1). Fail every caller with the
			// server's reason rather than a bare EOF.
			if tr, ok := msg.(*Trailer); ok && tr.Err != "" {
				c.fail(fmt.Errorf("%w: %s", ErrClientClosed, tr.Err))
				return
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[id]
		c.mu.Unlock()
		if ch == nil {
			continue // response to an abandoned request
		}
		// Blocking delivery is the backpressure: the consumer's pace
		// bounds how far the server can run ahead on this connection.
		ch <- msg
	}
}

func (c *Client) fail(err error) {
	c.c.Close()
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = map[uint64]chan any{}
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// closedErr is what a pending call reports when the connection died:
// the recorded failure reason (always wrapping ErrClientClosed), so a
// server-side rejection surfaces its message instead of a bare EOF.
func (c *Client) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrClientClosed
}

// register allocates a request ID and its response channel.
func (c *Client) register() (uint64, chan any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan any, 4)
	c.pending[id] = ch
	return id, ch, nil
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *Client) writeFrame(t Type, msg any) error {
	buf, err := EncodeFrame(t, msg)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.c.Write(buf); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	return nil
}

// Cursor is the client-side image of mediation.Cursor: rows stream in
// chunk frames and the trailer carries the terminal error and stats.
// Not safe for concurrent use by multiple consumers.
type Cursor struct {
	c    *Client
	id   uint64
	ch   chan any
	buf  [][]string
	next int

	canceled bool
	done     bool
	cols     []string
	stats    Stats
	err      error
}

// Query starts a streamed query. The ID field of q is assigned by the
// client. ctx only bounds call setup; per-row waits take their own ctx
// in Next, and Close propagates cancellation server-side.
func (c *Client) Query(ctx context.Context, q Query) (*Cursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	q.ID = id
	if err := c.writeFrame(TQuery, &q); err != nil {
		c.unregister(id)
		return nil, err
	}
	return &Cursor{c: c, id: id, ch: ch}, nil
}

// Next yields the next row. ok=false means the stream ended (consult
// Err) or ctx fired first; like mediation.Cursor.Next, a fired ctx
// neither cancels the query nor poisons the cursor.
func (cur *Cursor) Next(ctx context.Context) ([]string, bool) {
	for {
		if cur.next < len(cur.buf) {
			row := cur.buf[cur.next]
			cur.next++
			return row, true
		}
		if cur.done {
			return nil, false
		}
		var msg any
		var ok bool
		select {
		case msg, ok = <-cur.ch:
		default:
			select {
			case msg, ok = <-cur.ch:
			case <-ctx.Done():
				return nil, false
			}
		}
		if !cur.absorb(msg, ok) {
			return nil, false
		}
	}
}

// absorb folds one demuxed message into the cursor; false means the
// stream is over.
func (cur *Cursor) absorb(msg any, ok bool) bool {
	if !ok {
		cur.done = true
		cur.err = cur.c.closedErr()
		cur.c.unregister(cur.id)
		return false
	}
	switch m := msg.(type) {
	case *RowChunk:
		if m.Columns != nil && cur.cols == nil {
			cur.cols = m.Columns
		}
		cur.buf = m.Rows
		cur.next = 0
		return true
	case *Trailer:
		cur.done = true
		if m.Columns != nil {
			cur.cols = m.Columns
		}
		cur.stats = m.Stats
		if m.Err != "" {
			cur.err = errors.New(m.Err)
		}
		cur.c.unregister(cur.id)
		return false
	default:
		cur.done = true
		cur.err = fmt.Errorf("wire: unexpected %T in query stream", msg)
		cur.c.unregister(cur.id)
		return false
	}
}

// Close cancels the query server-side (a Cancel frame) and drains the
// stream to its trailer, so the server's engine context is released
// and the connection carries no stale frames. Idempotent.
func (cur *Cursor) Close() error {
	if !cur.done && !cur.canceled {
		cur.canceled = true
		cur.c.writeFrame(TCancel, &Cancel{ID: cur.id})
	}
	for !cur.done {
		msg, ok := <-cur.ch
		cur.absorb(msg, ok)
	}
	return cur.err
}

// Columns returns the output column names once known.
func (cur *Cursor) Columns() []string { return cur.cols }

// Err returns the terminal error after the stream ended.
func (cur *Cursor) Err() error { return cur.err }

// Stats returns the trailer's execution stats; valid once the stream
// ended.
func (cur *Cursor) Stats() Stats { return cur.stats }

// Write applies a batch and waits for its receipt. Cancelling ctx
// sends a Cancel frame (stopping the server-side engine between write
// groups) and still waits for the receipt, which reports what was
// applied before the cut.
func (c *Client) Write(ctx context.Context, w Write) (*Receipt, error) {
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	defer c.unregister(id)
	w.ID = id
	if err := c.writeFrame(TWrite, &w); err != nil {
		return nil, err
	}
	canceled := false
	for {
		select {
		case msg, ok := <-ch:
			if !ok {
				return nil, c.closedErr()
			}
			rec, isRec := msg.(*Receipt)
			if !isRec {
				return nil, fmt.Errorf("wire: unexpected %T awaiting receipt", msg)
			}
			if rec.Err != "" {
				return rec, errors.New(rec.Err)
			}
			return rec, nil
		case <-ctx.Done():
			if canceled {
				// Second fire can only be the same ctx; keep waiting
				// for the receipt on the channel.
				continue
			}
			canceled = true
			c.writeFrame(TCancel, &Cancel{ID: id})
		}
	}
}

// Stats fetches the daemon's operational counters.
func (c *Client) Stats(ctx context.Context) (*DaemonStats, error) {
	msg, err := c.call(ctx, TStatsReq, func(id uint64) any { return &StatsReq{ID: id} })
	if err != nil {
		return nil, err
	}
	st, ok := msg.(*DaemonStats)
	if !ok {
		return nil, fmt.Errorf("wire: unexpected %T awaiting stats", msg)
	}
	return st, nil
}

// Dump fetches per-peer store dumps; peer narrows to one hosted peer,
// empty dumps all.
func (c *Client) Dump(ctx context.Context, peer string) (*Dump, error) {
	msg, err := c.call(ctx, TDumpReq, func(id uint64) any { return &DumpReq{ID: id, Peer: peer} })
	if err != nil {
		return nil, err
	}
	d, ok := msg.(*Dump)
	if !ok {
		return nil, fmt.Errorf("wire: unexpected %T awaiting dump", msg)
	}
	if d.Err != "" {
		return d, errors.New(d.Err)
	}
	return d, nil
}

// call is the unary request helper: register, send, await one reply.
func (c *Client) call(ctx context.Context, t Type, mk func(id uint64) any) (any, error) {
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	defer c.unregister(id)
	if err := c.writeFrame(t, mk(id)); err != nil {
		return nil, err
	}
	select {
	case msg, ok := <-ch:
		if !ok {
			return nil, c.closedErr()
		}
		return msg, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
