package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"gridvine/internal/triple"
)

// FuzzWireDecode throws arbitrary bytes at both frame decoders (the
// byte-slice parser and the io.Reader path) and asserts the protocol's
// robustness contract: truncated, corrupt, or oversized frames yield a
// classified error — never a panic, never an unbounded allocation, and
// never a frame that failed its checksum.
func FuzzWireDecode(f *testing.F) {
	pat := triple.Pattern{S: triple.Var("s"), P: triple.Const("p"), O: triple.Var("o")}
	seeds := [][]byte{
		{},
		{0},
		{byte(TQuery)},
		bytes.Repeat([]byte{0xff}, frameHeader),
	}
	if fr, err := EncodeFrame(TQuery, &Query{ID: 7, Pattern: &pat}); err == nil {
		seeds = append(seeds, fr, fr[:len(fr)-2], fr[frameHeader:])
		corrupt := append([]byte(nil), fr...)
		corrupt[len(corrupt)-1] ^= 0x40
		seeds = append(seeds, corrupt)
		// Two frames back to back: the loop must consume both.
		if fr2, err := EncodeFrame(TCancel, &Cancel{ID: 9}); err == nil {
			seeds = append(seeds, append(append([]byte(nil), fr...), fr2...))
		}
	}
	// A header claiming an oversized payload must be rejected before
	// any allocation happens.
	huge := make([]byte, frameHeader)
	huge[0] = byte(TRowChunk)
	binary.LittleEndian.PutUint32(huge[1:5], MaxPayload+1)
	seeds = append(seeds, huge)
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			typ, payload, n, err := DecodeFrame(rest)
			if err != nil {
				if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrShortFrame) {
					t.Fatalf("unclassified decode error: %v", err)
				}
				break
			}
			if n <= frameHeader-1 || n > len(rest) {
				t.Fatalf("consumed %d of %d bytes", n, len(rest))
			}
			if len(payload) != n-frameHeader {
				t.Fatalf("payload %d bytes for frame of %d", len(payload), n)
			}
			// Payload passed the checksum; gob decoding may still fail
			// (a validly-framed garbage payload) but must not panic.
			if msg, err := DecodeMessage(typ, payload); err == nil {
				// A decoded message must re-encode into a decodable
				// frame of the same type.
				refr, err := EncodeFrame(typ, msg)
				if err != nil {
					t.Fatalf("re-encode of decoded %T: %v", msg, err)
				}
				if typ2, _, _, err := DecodeFrame(refr); err != nil || typ2 != typ {
					t.Fatalf("re-encoded frame broken: type %d err %v", typ2, err)
				}
			} else if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("unclassified message error: %v", err)
			}
			rest = rest[n:]
		}

		// The io.Reader path must classify identically and never panic.
		if _, _, err := ReadFrame(bytes.NewReader(data)); err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrShortFrame) && !errors.Is(err, io.EOF) {
				t.Fatalf("unclassified ReadFrame error: %v", err)
			}
		}
	})
}

// TestDecodeFrameOversizedLength pins the allocation guard: a header
// claiming more than MaxPayload is rejected as a bad frame even though
// the bytes "after" it are absent, and the reader path refuses it too.
func TestDecodeFrameOversizedLength(t *testing.T) {
	hdr := make([]byte, frameHeader)
	hdr[0] = byte(TRowChunk)
	binary.LittleEndian.PutUint32(hdr[1:5], MaxPayload+1)
	if _, _, _, err := DecodeFrame(hdr); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized claim: got %v, want ErrBadFrame", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized claim via reader: got %v, want ErrBadFrame", err)
	}
}

// TestReadFrameTruncatedPayload pins the short-read classification: a
// valid header whose payload never arrives is a truncated frame.
func TestReadFrameTruncatedPayload(t *testing.T) {
	fr, err := EncodeFrame(TCancel, &Cancel{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(fr); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(fr[:cut])); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("cut at %d: got %v, want ErrShortFrame", cut, err)
		}
	}
}
