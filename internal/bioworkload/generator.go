package bioworkload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"gridvine/internal/schema"
	"gridvine/internal/triple"
)

// Config parameterizes workload generation.
type Config struct {
	// Schemas is the number of schemas to generate. Default 50 (the paper's
	// demonstration size).
	Schemas int
	// Entities is the number of distinct protein/nucleotide entities.
	// Default 200.
	Entities int
	// MinConcepts/MaxConcepts bound the non-core concepts per schema.
	// Defaults 4/8 (plus the core concepts, which every schema carries).
	MinConcepts int
	MaxConcepts int
	// MinCoverage/MaxCoverage bound how many schemas each entity appears
	// in. Defaults 3/6: overlapping coverage creates the shared references.
	MinCoverage int
	MaxCoverage int
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Schemas == 0 {
		c.Schemas = 50
	}
	if c.Entities == 0 {
		c.Entities = 200
	}
	if c.MinConcepts == 0 {
		c.MinConcepts = 4
	}
	if c.MaxConcepts == 0 {
		c.MaxConcepts = 8
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 3
	}
	if c.MaxCoverage == 0 {
		c.MaxCoverage = 6
	}
	if c.MaxConcepts < c.MinConcepts {
		c.MaxConcepts = c.MinConcepts
	}
	if c.MaxCoverage < c.MinCoverage {
		c.MaxCoverage = c.MinCoverage
	}
	return c
}

// SchemaInfo is one generated schema with its ground-truth concept mapping.
type SchemaInfo struct {
	Schema schema.Schema
	// AttrConcept maps each attribute name to its concept.
	AttrConcept map[string]string
	// ConceptAttr maps each concept to the attribute name this schema uses.
	ConceptAttr map[string]string
}

// Entity is one protein/nucleotide record identified by a shared accession.
type Entity struct {
	Accession string
	Subject   string // the shared subject URI, e.g. "acc:GV00042"
	// Values holds the entity's value for every concept (consistent across
	// all schemas describing it).
	Values map[string]string
	// Schemas lists the schemas that carry a record for this entity.
	Schemas []string
}

// Workload is a fully generated demonstration dataset.
type Workload struct {
	Domain   string
	Schemas  []SchemaInfo
	Entities []Entity

	cfg      Config
	byName   map[string]*SchemaInfo
	triples  []triple.Triple
	bySchema map[string][]triple.Triple
}

// Generate builds a workload from the configuration, deterministically.
func Generate(cfg Config) *Workload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{
		Domain:   "protein-sequences",
		cfg:      cfg,
		byName:   map[string]*SchemaInfo{},
		bySchema: map[string][]triple.Triple{},
	}

	w.generateSchemas(rng)
	w.generateEntities(rng)
	w.exportTriples()
	return w
}

func (w *Workload) generateSchemas(rng *rand.Rand) {
	var nonCore []concept
	for _, c := range conceptPool {
		if !c.core {
			nonCore = append(nonCore, c)
		}
	}
	for i := 0; i < w.cfg.Schemas; i++ {
		var name string
		if i < len(schemaBaseNames) {
			name = schemaBaseNames[i]
		} else {
			name = fmt.Sprintf("BioDB%02d", i)
		}
		info := SchemaInfo{
			AttrConcept: map[string]string{},
			ConceptAttr: map[string]string{},
		}
		// Core concepts always present.
		var chosen []concept
		for _, c := range conceptPool {
			if c.core {
				chosen = append(chosen, c)
			}
		}
		// A random subset of the non-core pool.
		k := w.cfg.MinConcepts + rng.Intn(w.cfg.MaxConcepts-w.cfg.MinConcepts+1)
		perm := rng.Perm(len(nonCore))
		for _, idx := range perm {
			if len(chosen) >= k+2 { // +2 core concepts
				break
			}
			chosen = append(chosen, nonCore[idx])
		}
		// Pick a synonym per concept, avoiding attribute-name collisions
		// within the schema (a schema cannot define "Name" twice).
		var attrs []string
		used := map[string]bool{}
		for _, c := range chosen {
			var attr string
			start := rng.Intn(len(c.synonyms))
			for off := 0; off < len(c.synonyms); off++ {
				cand := c.synonyms[(start+off)%len(c.synonyms)]
				if !used[cand] {
					attr = cand
					break
				}
			}
			if attr == "" {
				continue // all synonyms taken: drop the concept
			}
			used[attr] = true
			attrs = append(attrs, attr)
			info.AttrConcept[attr] = c.name
			info.ConceptAttr[c.name] = attr
		}
		info.Schema = schema.NewSchema(name, w.Domain, attrs...)
		w.Schemas = append(w.Schemas, info)
	}
	for i := range w.Schemas {
		w.byName[w.Schemas[i].Schema.Name] = &w.Schemas[i]
	}
}

func (w *Workload) generateEntities(rng *rand.Rand) {
	for i := 0; i < w.cfg.Entities; i++ {
		acc := fmt.Sprintf("GV%05d", i)
		e := Entity{
			Accession: acc,
			Subject:   "acc:" + acc,
			Values:    map[string]string{},
		}
		for _, c := range conceptPool {
			e.Values[c.name] = w.valueFor(c, i, rng)
		}
		// Coverage: which schemas describe this entity.
		cov := w.cfg.MinCoverage + rng.Intn(w.cfg.MaxCoverage-w.cfg.MinCoverage+1)
		if cov > len(w.Schemas) {
			cov = len(w.Schemas)
		}
		perm := rng.Perm(len(w.Schemas))
		for _, idx := range perm[:cov] {
			e.Schemas = append(e.Schemas, w.Schemas[idx].Schema.Name)
		}
		sort.Strings(e.Schemas)
		w.Entities = append(w.Entities, e)
	}
}

// valueFor produces the entity's value for a concept. Values are sampled
// once per entity and reused by every schema, which is what makes the set
// distance measure informative.
func (w *Workload) valueFor(c concept, entityIdx int, rng *rand.Rand) string {
	switch c.generator {
	case "accession":
		return fmt.Sprintf("GV%05d", entityIdx)
	case "organism":
		return organisms[rng.Intn(len(organisms))]
	case "length":
		return fmt.Sprint(120 + rng.Intn(3200))
	case "description":
		return fmt.Sprintf("%s from %s", proteinNames[rng.Intn(len(proteinNames))], organisms[rng.Intn(len(organisms))])
	case "gene":
		return geneNames[rng.Intn(len(geneNames))]
	case "protein":
		return proteinNames[rng.Intn(len(proteinNames))]
	case "taxid":
		return fmt.Sprint(1000 + rng.Intn(90000))
	case "keyword":
		a := keywordPool[rng.Intn(len(keywordPool))]
		b := keywordPool[rng.Intn(len(keywordPool))]
		if a == b {
			return a
		}
		return a + "; " + b
	case "weight":
		return fmt.Sprintf("%d Da", 8000+rng.Intn(220000))
	case "created":
		return fmt.Sprintf("%04d-%02d-%02d", 1995+rng.Intn(10), 1+rng.Intn(12), 1+rng.Intn(28))
	case "modified":
		return fmt.Sprintf("%04d-%02d-%02d", 2005+rng.Intn(3), 1+rng.Intn(12), 1+rng.Intn(28))
	case "dbsource":
		return dbSources[rng.Intn(len(dbSources))]
	case "ec":
		return fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(6), 1+rng.Intn(20), 1+rng.Intn(25), 1+rng.Intn(200))
	case "location":
		return locations[rng.Intn(len(locations))]
	case "sequence":
		var b strings.Builder
		n := 30 + rng.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteByte(aminoAcids[rng.Intn(len(aminoAcids))])
		}
		return b.String()
	case "citation":
		return fmt.Sprintf("PMID:%d", 7000000+rng.Intn(12000000))
	default:
		return fmt.Sprintf("value-%d", entityIdx)
	}
}

// exportTriples materializes every (entity, schema, concept) as a triple.
func (w *Workload) exportTriples() {
	for _, e := range w.Entities {
		for _, schemaName := range e.Schemas {
			info := w.byName[schemaName]
			for conceptName, attr := range info.ConceptAttr {
				t := triple.Triple{
					Subject:   e.Subject,
					Predicate: info.Schema.PredicateURI(attr),
					Object:    e.Values[conceptName],
				}
				w.triples = append(w.triples, t)
				w.bySchema[schemaName] = append(w.bySchema[schemaName], t)
			}
		}
	}
	sort.Slice(w.triples, func(i, j int) bool {
		a, b := w.triples[i], w.triples[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object < b.Object
	})
}

// Triples returns every generated triple (sorted, stable).
func (w *Workload) Triples() []triple.Triple { return w.triples }

// TriplesOf returns the triples exported under one schema.
func (w *Workload) TriplesOf(schemaName string) []triple.Triple {
	return w.bySchema[schemaName]
}

// Subjects returns every entity subject URI in order.
func (w *Workload) Subjects() []string {
	out := make([]string, len(w.Entities))
	for i, e := range w.Entities {
		out[i] = e.Subject
	}
	return out
}

// SchemaNames returns the generated schema names in order.
func (w *Workload) SchemaNames() []string {
	out := make([]string, len(w.Schemas))
	for i, s := range w.Schemas {
		out[i] = s.Schema.Name
	}
	return out
}

// Info returns the schema info by name, or nil.
func (w *Workload) Info(name string) *SchemaInfo { return w.byName[name] }

// ConceptOf resolves a predicate URI to its ground-truth concept.
func (w *Workload) ConceptOf(predicateURI string) (string, bool) {
	name, attr, ok := schema.SplitPredicateURI(predicateURI)
	if !ok {
		return "", false
	}
	info := w.byName[name]
	if info == nil {
		return "", false
	}
	c, ok := info.AttrConcept[attr]
	return c, ok
}
