package bioworkload

import (
	"math/rand"
	"sort"

	"gridvine/internal/schema"
	"gridvine/internal/triple"
)

// GroundTruthMapping builds the correct manual mapping between two schemas
// from concept identity: one correspondence per concept present in both.
// ok=false when the schemas share no concept.
func (w *Workload) GroundTruthMapping(a, b string) (schema.Mapping, bool) {
	ia, ib := w.byName[a], w.byName[b]
	if ia == nil || ib == nil {
		return schema.Mapping{}, false
	}
	var corrs []schema.Correspondence
	for conceptName, attrA := range ia.ConceptAttr {
		if attrB, ok := ib.ConceptAttr[conceptName]; ok {
			corrs = append(corrs, schema.Correspondence{SourceAttr: attrA, TargetAttr: attrB, Confidence: 1})
		}
	}
	if len(corrs) == 0 {
		return schema.Mapping{}, false
	}
	m := schema.NewMapping(a, b, schema.Equivalence, schema.Manual, corrs)
	m.Bidirectional = true
	return m, true
}

// SeedMappings returns n manual ground-truth mappings forming a sparse
// chain across the schema list (the demonstrator's manually created
// mappings inserted alongside the schemas, paper §4).
func (w *Workload) SeedMappings(n int) []schema.Mapping {
	var out []schema.Mapping
	for i := 0; i+1 < len(w.Schemas) && len(out) < n; i++ {
		if m, ok := w.GroundTruthMapping(w.Schemas[i].Schema.Name, w.Schemas[i+1].Schema.Name); ok {
			out = append(out, m)
		}
	}
	return out
}

// Query is one benchmark query with its ground truth.
type Query struct {
	Pattern triple.Pattern
	// Concept is the ground-truth concept the predicate denotes.
	Concept string
	// Value is the constant the object is constrained to.
	Value string
	// GroundTruth is the set of triples, across every schema, asserting
	// Value for Concept — the basis of recall measurement.
	GroundTruth []triple.Triple
}

// Queries generates n single-pattern queries: each picks a random schema
// and concept, constrains the object to a value that actually occurs, and
// records the global ground truth for recall accounting.
func (w *Workload) Queries(n int, rng *rand.Rand) []Query {
	// Index: concept → value → triples (across all schemas).
	index := map[string]map[string][]triple.Triple{}
	for _, t := range w.triples {
		c, ok := w.ConceptOf(t.Predicate)
		if !ok {
			continue
		}
		if index[c] == nil {
			index[c] = map[string][]triple.Triple{}
		}
		index[c][t.Object] = append(index[c][t.Object], t)
	}

	var out []Query
	attempts := 0
	for len(out) < n && attempts < 50*n {
		attempts++
		info := w.Schemas[rng.Intn(len(w.Schemas))]
		// Pick a queryable concept of the schema.
		var conceptNames []string
		for c := range info.ConceptAttr {
			conceptNames = append(conceptNames, c)
		}
		sort.Strings(conceptNames)
		conceptName := conceptNames[rng.Intn(len(conceptNames))]
		values := index[conceptName]
		if len(values) == 0 {
			continue
		}
		var valueList []string
		for v := range values {
			valueList = append(valueList, v)
		}
		sort.Strings(valueList)
		value := valueList[rng.Intn(len(valueList))]
		gt := values[value]
		if len(gt) == 0 {
			continue
		}
		out = append(out, Query{
			Pattern: triple.Pattern{
				S: triple.Var("x"),
				P: triple.Const(info.Schema.PredicateURI(info.ConceptAttr[conceptName])),
				O: triple.Const(value),
			},
			Concept:     conceptName,
			Value:       value,
			GroundTruth: gt,
		})
	}
	return out
}

// Recall measures |found ∩ ground truth| / |ground truth| for one query.
func (q Query) Recall(found []triple.Triple) float64 {
	if len(q.GroundTruth) == 0 {
		return 1
	}
	set := map[triple.Triple]bool{}
	for _, t := range found {
		set[t] = true
	}
	hit := 0
	for _, t := range q.GroundTruth {
		if set[t] {
			hit++
		}
	}
	return float64(hit) / float64(len(q.GroundTruth))
}
