// Package bioworkload generates the synthetic bioinformatic workload
// standing in for the EBI/SRS export of the paper's demonstration (§4):
// 50 schemas related to protein and nucleotide sequences, built from a
// shared concept pool with per-schema synonym naming (including deliberate
// false friends), entities with overlapping schema coverage producing the
// shared references the mapping-creation heuristic exploits, triples, seed
// mappings, and query workloads with ground-truth recall.
//
// The generator is fully deterministic given its seed.
package bioworkload

// concept is one semantic property of the protein/nucleotide domain. Its
// synonyms are the attribute names schemas may use for it; two concepts may
// share a synonym (a "false friend"), which makes purely lexical matching
// unreliable on purpose.
type concept struct {
	name     string
	synonyms []string
	// core concepts appear in every schema (accession-like identifiers and
	// organisms are what bioinformatic records always carry).
	core bool
	// generator keys into the value tables below.
	generator string
}

// The concept pool. Note the planted false friends:
//   - "Name"  appears for both gene-name and protein-name,
//   - "Size"  appears for both sequence-length and molecular-weight,
//   - "Date"  appears for both created-date and modified-date,
//   - "Source" appears for both organism and database-source.
var conceptPool = []concept{
	{name: "accession", core: true, generator: "accession",
		synonyms: []string{"Accession", "AccessionNumber", "AC", "EntryID", "ID", "PrimaryAccession"}},
	{name: "organism", core: true, generator: "organism",
		synonyms: []string{"Organism", "SystematicName", "OrganismName", "Species", "Source", "BioSource", "Taxon"}},
	{name: "sequence-length", generator: "length",
		synonyms: []string{"Length", "SeqLength", "SequenceLength", "Size", "NumResidues", "AALength"}},
	{name: "description", generator: "description",
		synonyms: []string{"Description", "Definition", "DE", "Title", "EntryDescription"}},
	{name: "gene-name", generator: "gene",
		synonyms: []string{"GeneName", "Gene", "Name", "Symbol", "Locus"}},
	{name: "protein-name", generator: "protein",
		synonyms: []string{"ProteinName", "Name", "RecommendedName", "ProtDesc"}},
	{name: "taxonomy-id", generator: "taxid",
		synonyms: []string{"TaxonomyID", "TaxID", "NCBITaxon", "TaxonIdentifier"}},
	{name: "keywords", generator: "keyword",
		synonyms: []string{"Keywords", "KW", "Tags", "Categories"}},
	{name: "molecular-weight", generator: "weight",
		synonyms: []string{"MolecularWeight", "MolWeight", "MW", "Mass", "Size", "Weight"}},
	{name: "created-date", generator: "created",
		synonyms: []string{"CreatedDate", "Created", "Date", "FirstRelease"}},
	{name: "modified-date", generator: "modified",
		synonyms: []string{"ModifiedDate", "Modified", "Date", "LastUpdate", "Updated"}},
	{name: "database-source", generator: "dbsource",
		synonyms: []string{"Database", "DBSource", "Source", "Repository", "Origin"}},
	{name: "ec-number", generator: "ec",
		synonyms: []string{"ECNumber", "EC", "EnzymeCode", "EnzymeClassification"}},
	{name: "subcellular-location", generator: "location",
		synonyms: []string{"SubcellularLocation", "Location", "CellularComponent", "Compartment"}},
	{name: "sequence", generator: "sequence",
		synonyms: []string{"Sequence", "SEQ", "Residues", "AminoAcidSequence"}},
	{name: "citation", generator: "citation",
		synonyms: []string{"Citation", "Reference", "PubMedID", "PMID", "Literature"}},
}

// organisms is a realistic species pool (heavy on the Aspergillus genus the
// paper's running example queries for).
var organisms = []string{
	"Aspergillus nidulans", "Aspergillus niger", "Aspergillus flavus",
	"Aspergillus fumigatus", "Aspergillus oryzae", "Aspergillus terreus",
	"Homo sapiens", "Mus musculus", "Rattus norvegicus", "Danio rerio",
	"Drosophila melanogaster", "Caenorhabditis elegans",
	"Saccharomyces cerevisiae", "Schizosaccharomyces pombe",
	"Escherichia coli", "Bacillus subtilis", "Arabidopsis thaliana",
	"Oryza sativa", "Gallus gallus", "Xenopus laevis",
	"Penicillium chrysogenum", "Neurospora crassa", "Candida albicans",
	"Plasmodium falciparum", "Mycobacterium tuberculosis",
}

var geneNames = []string{
	"argB", "pyrG", "niaD", "trpC", "brlA", "abaA", "wetA", "fluG", "veA",
	"laeA", "gpdA", "actA", "tubA", "benA", "alcA", "amyB", "glaA", "pacC",
	"areA", "creA", "xlnR", "hacA", "bipA", "pdiA", "sodM", "catB",
}

var proteinNames = []string{
	"acetylglutamate kinase", "orotidine decarboxylase", "nitrate reductase",
	"anthranilate synthase", "transcription factor BrlA", "regulator AbaA",
	"glyceraldehyde-3-phosphate dehydrogenase", "actin", "alpha-tubulin",
	"beta-tubulin", "alcohol dehydrogenase", "alpha-amylase",
	"glucoamylase", "pH-response regulator", "nitrogen regulator AreA",
	"catabolite repressor CreA", "xylanolytic activator", "chaperone BipA",
	"superoxide dismutase", "catalase B",
}

var keywordPool = []string{
	"kinase", "transferase", "hydrolase", "oxidoreductase", "transcription",
	"membrane", "cytoplasm", "nucleus", "secreted", "glycoprotein",
	"metal-binding", "zinc", "iron", "signal", "transport", "repeat",
}

var locations = []string{
	"cytoplasm", "nucleus", "mitochondrion", "endoplasmic reticulum",
	"golgi apparatus", "cell membrane", "secreted", "peroxisome", "vacuole",
}

var dbSources = []string{
	"EMBL", "GenBank", "DDBJ", "SwissProt", "TrEMBL", "PIR", "PDB", "EMP",
}

// schemaBaseNames provide realistic database-flavoured schema names; past
// the list, synthetic names are generated.
var schemaBaseNames = []string{
	"EMBL", "EMP", "SwissProt", "TrEMBL", "GenBank", "DDBJ", "PIR", "PDB",
	"UniSeq", "ProtDB", "SeqStore", "BioReg", "EnzDB", "GeneCat", "ProtArc",
	"NucBase", "SeqBank", "MolRep", "BioIndex", "ProtNet",
}

var aminoAcids = "ACDEFGHIKLMNPQRSTVWY"
