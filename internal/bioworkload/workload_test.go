package bioworkload

import (
	"math/rand"
	"reflect"
	"testing"

	"gridvine/internal/schema"
)

func smallConfig() Config {
	return Config{Schemas: 10, Entities: 40, Seed: 42}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if !reflect.DeepEqual(a.Triples(), b.Triples()) {
		t.Error("generation not deterministic")
	}
	if !reflect.DeepEqual(a.SchemaNames(), b.SchemaNames()) {
		t.Error("schema names not deterministic")
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	a := Generate(Config{Schemas: 10, Entities: 40, Seed: 1})
	b := Generate(Config{Schemas: 10, Entities: 40, Seed: 2})
	if reflect.DeepEqual(a.Triples(), b.Triples()) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestSchemaCountAndNames(t *testing.T) {
	w := Generate(Config{Schemas: 50, Entities: 10, Seed: 3})
	if len(w.Schemas) != 50 {
		t.Fatalf("schemas = %d", len(w.Schemas))
	}
	names := map[string]bool{}
	for _, s := range w.Schemas {
		if names[s.Schema.Name] {
			t.Errorf("duplicate schema name %q", s.Schema.Name)
		}
		names[s.Schema.Name] = true
		if s.Schema.Domain != "protein-sequences" {
			t.Errorf("domain = %q", s.Schema.Domain)
		}
	}
	if !names["EMBL"] || !names["EMP"] {
		t.Error("expected paper schema names EMBL and EMP")
	}
}

func TestCoreConceptsPresent(t *testing.T) {
	w := Generate(smallConfig())
	for _, s := range w.Schemas {
		if _, ok := s.ConceptAttr["accession"]; !ok {
			t.Errorf("schema %s misses accession", s.Schema.Name)
		}
		if _, ok := s.ConceptAttr["organism"]; !ok {
			t.Errorf("schema %s misses organism", s.Schema.Name)
		}
	}
}

func TestNoAttrCollisionsWithinSchema(t *testing.T) {
	w := Generate(Config{Schemas: 50, Entities: 5, Seed: 7})
	for _, s := range w.Schemas {
		seen := map[string]bool{}
		for _, a := range s.Schema.Attributes {
			if seen[a] {
				t.Errorf("schema %s defines %q twice", s.Schema.Name, a)
			}
			seen[a] = true
		}
		// Ground-truth maps are consistent.
		for attr, c := range s.AttrConcept {
			if s.ConceptAttr[c] != attr {
				t.Errorf("schema %s: AttrConcept/ConceptAttr inconsistent for %q", s.Schema.Name, attr)
			}
		}
	}
}

func TestEntityValuesConsistentAcrossSchemas(t *testing.T) {
	w := Generate(smallConfig())
	// Every triple's object must equal the entity's concept value.
	for _, tr := range w.Triples() {
		c, ok := w.ConceptOf(tr.Predicate)
		if !ok {
			t.Fatalf("predicate %q has no concept", tr.Predicate)
		}
		var found bool
		for _, e := range w.Entities {
			if e.Subject == tr.Subject {
				found = true
				if e.Values[c] != tr.Object {
					t.Errorf("triple %v disagrees with entity value %q", tr, e.Values[c])
				}
				break
			}
		}
		if !found {
			t.Fatalf("triple subject %q unknown", tr.Subject)
		}
	}
}

func TestCoverageBounds(t *testing.T) {
	cfg := Config{Schemas: 20, Entities: 50, MinCoverage: 3, MaxCoverage: 6, Seed: 4}
	w := Generate(cfg)
	for _, e := range w.Entities {
		if len(e.Schemas) < 3 || len(e.Schemas) > 6 {
			t.Errorf("entity %s coverage = %d", e.Accession, len(e.Schemas))
		}
	}
}

func TestSharedReferencesExist(t *testing.T) {
	w := Generate(smallConfig())
	// With overlapping coverage, many schema pairs must share entities.
	shared := 0
	for _, e := range w.Entities {
		if len(e.Schemas) >= 2 {
			shared++
		}
	}
	if shared < len(w.Entities)/2 {
		t.Errorf("only %d/%d entities shared across schemas", shared, len(w.Entities))
	}
}

func TestTriplesOfPartition(t *testing.T) {
	w := Generate(smallConfig())
	total := 0
	for _, name := range w.SchemaNames() {
		total += len(w.TriplesOf(name))
	}
	if total != len(w.Triples()) {
		t.Errorf("per-schema triples %d != total %d", total, len(w.Triples()))
	}
}

func TestFalseFriendsPresent(t *testing.T) {
	// Across the pool, at least one synonym string maps to two different
	// concepts (e.g. "Name", "Size") — the matcher trap.
	byAttr := map[string]map[string]bool{}
	for _, c := range conceptPool {
		for _, syn := range c.synonyms {
			if byAttr[syn] == nil {
				byAttr[syn] = map[string]bool{}
			}
			byAttr[syn][c.name] = true
		}
	}
	traps := 0
	for _, concepts := range byAttr {
		if len(concepts) > 1 {
			traps++
		}
	}
	if traps < 3 {
		t.Errorf("false friends = %d, want ≥ 3", traps)
	}
}

func TestGroundTruthMapping(t *testing.T) {
	w := Generate(smallConfig())
	a := w.Schemas[0].Schema.Name
	b := w.Schemas[1].Schema.Name
	m, ok := w.GroundTruthMapping(a, b)
	if !ok {
		t.Fatal("no ground-truth mapping between first two schemas (both carry core concepts)")
	}
	if m.Origin != schema.Manual || !m.Bidirectional {
		t.Errorf("mapping meta = %+v", m)
	}
	// Every correspondence must link attributes of the same concept.
	ia, ib := w.Info(a), w.Info(b)
	for _, c := range m.Correspondences {
		if ia.AttrConcept[c.SourceAttr] != ib.AttrConcept[c.TargetAttr] {
			t.Errorf("correspondence %v crosses concepts", c)
		}
	}
	if _, ok := w.GroundTruthMapping("nope", b); ok {
		t.Error("unknown schema should fail")
	}
}

func TestSeedMappingsChain(t *testing.T) {
	w := Generate(smallConfig())
	seeds := w.SeedMappings(5)
	if len(seeds) != 5 {
		t.Fatalf("seeds = %d", len(seeds))
	}
	for i, m := range seeds {
		if m.Source != w.Schemas[i].Schema.Name || m.Target != w.Schemas[i+1].Schema.Name {
			t.Errorf("seed %d links %s→%s", i, m.Source, m.Target)
		}
	}
}

func TestQueriesGroundTruth(t *testing.T) {
	w := Generate(smallConfig())
	rng := rand.New(rand.NewSource(9))
	queries := w.Queries(20, rng)
	if len(queries) != 20 {
		t.Fatalf("queries = %d", len(queries))
	}
	for _, q := range queries {
		if len(q.GroundTruth) == 0 {
			t.Errorf("query %v has empty ground truth", q.Pattern)
		}
		// The constrained value must actually occur in the ground truth.
		for _, tr := range q.GroundTruth {
			if tr.Object != q.Value {
				t.Errorf("ground-truth triple %v does not match value %q", tr, q.Value)
			}
			c, _ := w.ConceptOf(tr.Predicate)
			if c != q.Concept {
				t.Errorf("ground-truth triple %v has concept %q, want %q", tr, c, q.Concept)
			}
		}
	}
}

func TestRecall(t *testing.T) {
	w := Generate(smallConfig())
	rng := rand.New(rand.NewSource(10))
	q := w.Queries(1, rng)[0]
	if r := q.Recall(nil); r != 0 {
		t.Errorf("empty recall = %v", r)
	}
	if r := q.Recall(q.GroundTruth); r != 1 {
		t.Errorf("full recall = %v", r)
	}
	half := q.GroundTruth[:len(q.GroundTruth)/2]
	if len(half) > 0 {
		r := q.Recall(half)
		want := float64(len(half)) / float64(len(q.GroundTruth))
		if r != want {
			t.Errorf("partial recall = %v, want %v", r, want)
		}
	}
}

func TestPaperScaleWorkload(t *testing.T) {
	// The deployment configuration must land near 17 000 triples.
	w := Generate(Config{Schemas: 50, Entities: 430, MinCoverage: 4, MaxCoverage: 6, Seed: 11})
	n := len(w.Triples())
	if n < 14000 || n > 21000 {
		t.Errorf("paper-scale workload = %d triples, want ≈17000", n)
	}
}
