package keyspace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseKey(t *testing.T) {
	k, err := ParseKey("0110")
	if err != nil {
		t.Fatalf("ParseKey: %v", err)
	}
	if k.String() != "0110" {
		t.Errorf("got %q, want %q", k.String(), "0110")
	}
	if k.Len() != 4 {
		t.Errorf("Len = %d, want 4", k.Len())
	}
	if _, err := ParseKey("01x0"); err == nil {
		t.Error("ParseKey accepted invalid bit")
	}
}

func TestParseKeyEmpty(t *testing.T) {
	k, err := ParseKey("")
	if err != nil {
		t.Fatalf("ParseKey(\"\"): %v", err)
	}
	if !k.IsEmpty() {
		t.Error("empty key not IsEmpty")
	}
}

func TestMustParseKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseKey did not panic on invalid input")
		}
	}()
	MustParseKey("2")
}

func TestKeyBits(t *testing.T) {
	k := MustParseKey("101")
	want := []int{1, 0, 1}
	for i, w := range want {
		if got := k.Bit(i); got != w {
			t.Errorf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestKeyFromBits(t *testing.T) {
	k := KeyFromBits([]bool{true, false, true, true})
	if k.String() != "1011" {
		t.Errorf("KeyFromBits = %q, want 1011", k.String())
	}
}

func TestAppendAndPrefix(t *testing.T) {
	k := Key{}
	k = k.Append(1).Append(0).Append(1)
	if k.String() != "101" {
		t.Fatalf("Append chain = %q", k.String())
	}
	if p := k.Prefix(2); p.String() != "10" {
		t.Errorf("Prefix(2) = %q", p.String())
	}
	if p := k.Prefix(0); !p.IsEmpty() {
		t.Errorf("Prefix(0) = %q, want empty", p.String())
	}
}

func TestPrefixRelations(t *testing.T) {
	a := MustParseKey("10")
	b := MustParseKey("101")
	if !a.IsPrefixOf(b) {
		t.Error("10 should be prefix of 101")
	}
	if b.IsPrefixOf(a) {
		t.Error("101 should not be prefix of 10")
	}
	if !a.IsPrefixOf(a) {
		t.Error("key should be prefix of itself")
	}
	if !b.HasPrefix(a) {
		t.Error("101 should have prefix 10")
	}
	empty := Key{}
	if !empty.IsPrefixOf(b) {
		t.Error("empty key should be prefix of everything")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"1", "0", 0},
		{"101", "100", 2},
		{"101", "101", 3},
		{"101", "1011", 3},
		{"0000", "0001", 3},
	}
	for _, c := range cases {
		got := MustParseKey(c.a).CommonPrefixLen(MustParseKey(c.b))
		if got != c.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFlipBitSiblingParent(t *testing.T) {
	k := MustParseKey("101")
	if f := k.FlipBit(1); f.String() != "111" {
		t.Errorf("FlipBit(1) = %q", f.String())
	}
	if s := k.Sibling(); s.String() != "100" {
		t.Errorf("Sibling = %q", s.String())
	}
	if p := k.Parent(); p.String() != "10" {
		t.Errorf("Parent = %q", p.String())
	}
}

func TestSiblingPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sibling on empty key did not panic")
		}
	}()
	(Key{}).Sibling()
}

func TestCompare(t *testing.T) {
	if MustParseKey("0").Compare(MustParseKey("1")) != -1 {
		t.Error("0 < 1 expected")
	}
	if MustParseKey("1").Compare(MustParseKey("1")) != 0 {
		t.Error("1 == 1 expected")
	}
	if MustParseKey("11").Compare(MustParseKey("10")) != 1 {
		t.Error("11 > 10 expected")
	}
}

func TestHashOrderPreserving(t *testing.T) {
	words := []string{"aardvark", "apple", "banana", "cherry", "grape", "zebra"}
	for i := 0; i < len(words)-1; i++ {
		a := HashDefault(words[i])
		b := HashDefault(words[i+1])
		if a.Compare(b) >= 0 {
			t.Errorf("Hash(%q)=%s not < Hash(%q)=%s", words[i], a, words[i+1], b)
		}
	}
}

func TestHashCaseInsensitive(t *testing.T) {
	if !HashDefault("Organism").Equal(HashDefault("organism")) {
		t.Error("Hash should be case-insensitive")
	}
}

func TestHashDepth(t *testing.T) {
	for _, d := range []int{1, 8, 16, 64, 96, 128} {
		if got := Hash("test", d).Len(); got != d {
			t.Errorf("Hash depth %d produced %d bits", d, got)
		}
	}
	if got := Hash("test", 0).Len(); got != DefaultDepth {
		t.Errorf("Hash depth 0 produced %d bits, want default %d", got, DefaultDepth)
	}
}

func TestHashDeterministic(t *testing.T) {
	if !Hash("EMBL#Organism", 64).Equal(Hash("EMBL#Organism", 64)) {
		t.Error("Hash not deterministic")
	}
}

func TestUniformHashDeterministicAndDistinct(t *testing.T) {
	a := UniformHash("schema-a", 64)
	b := UniformHash("schema-b", 64)
	if a.Equal(b) {
		t.Error("UniformHash collision on distinct inputs")
	}
	if !a.Equal(UniformHash("schema-a", 64)) {
		t.Error("UniformHash not deterministic")
	}
	if UniformHash("x", 32).Len() != 32 {
		t.Error("UniformHash wrong depth")
	}
}

// Property: the order-preserving hash is monotone with respect to
// lexicographic order of normalized inputs whenever they differ inside the
// order-preserving region (first OrderPreservingBits/8 bytes); identical
// inputs map to identical keys.
func TestHashMonotoneProperty(t *testing.T) {
	region := OrderPreservingBits / 8
	clip := func(s string) string {
		// Zero-pad to the region length, mirroring the fraction expansion.
		b := make([]byte, region)
		copy(b, s)
		return string(b)
	}
	f := func(a, b string) bool {
		na, nb := normalize(a), normalize(b)
		ka, kb := HashDefault(a), HashDefault(b)
		if na == nb {
			return ka.Equal(kb)
		}
		switch strings.Compare(clip(na), clip(nb)) {
		case -1:
			return ka.Compare(kb) <= 0
		case 1:
			return ka.Compare(kb) >= 0
		default:
			// Same order-preserving region: only the tie-break differs.
			return ka.Prefix(OrderPreservingBits).Equal(kb.Prefix(OrderPreservingBits))
		}
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Strings sharing a long common prefix must still receive distinct keys via
// the tie-break suffix (this is what keeps distinct URIs from colliding).
func TestHashTieBreakDistinctness(t *testing.T) {
	a := HashDefault("gridvine://peer-001/resource-a")
	b := HashDefault("gridvine://peer-001/resource-b")
	if a.Equal(b) {
		t.Error("long-common-prefix strings collided")
	}
	if !a.Prefix(OrderPreservingBits).Equal(b.Prefix(OrderPreservingBits)) {
		t.Error("order-preserving prefix should match for identical 12-byte prefixes")
	}
}

// Property: prefix relation is consistent with CommonPrefixLen.
func TestPrefixConsistencyProperty(t *testing.T) {
	f := func(raw []bool, n uint8) bool {
		k := KeyFromBits(raw)
		cut := int(n)
		if cut > k.Len() {
			cut = k.Len()
		}
		p := k.Prefix(cut)
		return p.IsPrefixOf(k) && p.CommonPrefixLen(k) == cut
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: FlipBit is an involution and changes exactly one bit.
func TestFlipBitProperty(t *testing.T) {
	f := func(raw []bool, idx uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := KeyFromBits(raw)
		i := int(idx) % k.Len()
		flipped := k.FlipBit(i)
		if flipped.Equal(k) {
			return false
		}
		if !flipped.FlipBit(i).Equal(k) {
			return false
		}
		diff := 0
		for j := 0; j < k.Len(); j++ {
			if k.Bit(j) != flipped.Bit(j) {
				diff++
			}
		}
		return diff == 1
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hash("EMBL#Organism/Aspergillus-nidulans", DefaultDepth)
	}
}
