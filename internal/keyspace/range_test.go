package keyspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoverRangeFullSpace(t *testing.T) {
	lo := MustParseKey("000")
	hi := MustParseKey("111")
	cover := CoverRange(lo, hi, 3)
	if len(cover) != 1 || !cover[0].IsEmpty() {
		t.Errorf("full-space cover = %v, want [empty prefix]", cover)
	}
}

func TestCoverRangeSingleKey(t *testing.T) {
	k := MustParseKey("101")
	cover := CoverRange(k, k, 3)
	if len(cover) != 1 || !cover[0].Equal(k) {
		t.Errorf("single-key cover = %v", cover)
	}
}

func TestCoverRangeHalf(t *testing.T) {
	cover := CoverRange(MustParseKey("000"), MustParseKey("011"), 3)
	if len(cover) != 1 || cover[0].String() != "0" {
		t.Errorf("left-half cover = %v, want [0]", cover)
	}
}

func TestCoverRangeStraddle(t *testing.T) {
	// [001, 110] = 001 ∪ 01 ∪ 10 ∪ 110
	cover := CoverRange(MustParseKey("001"), MustParseKey("110"), 3)
	want := []string{"001", "01", "10", "110"}
	if len(cover) != len(want) {
		t.Fatalf("cover = %v, want %v", cover, want)
	}
	for i := range want {
		if cover[i].String() != want[i] {
			t.Errorf("cover[%d] = %v, want %v", i, cover[i], want[i])
		}
	}
}

func TestCoverRangeInvertedEmpty(t *testing.T) {
	if c := CoverRange(MustParseKey("10"), MustParseKey("01"), 2); c != nil {
		t.Errorf("inverted range cover = %v, want nil", c)
	}
}

func TestCoverRangeBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched depth should panic")
		}
	}()
	CoverRange(MustParseKey("0"), MustParseKey("11"), 2)
}

// Property: the cover is prefix-free, and a key at the given depth is inside
// [lo,hi] iff exactly one cover prefix covers it.
func TestCoverRangeExactnessProperty(t *testing.T) {
	const depth = 8
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		lo := intToKey(x, depth)
		hi := intToKey(y, depth)
		cover := CoverRange(lo, hi, depth)
		// Prefix-free.
		for i := range cover {
			for j := range cover {
				if i != j && cover[i].IsPrefixOf(cover[j]) {
					return false
				}
			}
		}
		for v := 0; v < 256; v++ {
			k := intToKey(v, depth)
			n := 0
			for _, p := range cover {
				if p.IsPrefixOf(k) {
					n++
				}
			}
			inside := v >= x && v <= y
			if inside && n != 1 {
				return false
			}
			if !inside && n != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func intToKey(v, depth int) Key {
	k := Key{}
	for i := depth - 1; i >= 0; i-- {
		k = k.Append((v >> uint(i)) & 1)
	}
	return k
}
