// Package keyspace implements the binary key space underlying the P-Grid
// overlay: fixed-alphabet binary keys, prefix algebra, and the
// order-preserving hash function used by GridVine to map triple components
// onto routable keys (paper §2.2).
//
// A Key is a sequence of bits. Peers are associated with key-space paths
// (short keys); data items are hashed to full-depth keys. A peer whose path
// is a prefix of a data key is responsible for that key.
package keyspace

import (
	"fmt"
	"strings"
)

// Key is an immutable sequence of bits in the binary key space.
// The zero value is the empty key (the root of the trie).
type Key struct {
	bits string // each byte is '0' or '1'
}

// ParseKey builds a Key from a string of '0' and '1' characters.
func ParseKey(s string) (Key, error) {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' && s[i] != '1' {
			return Key{}, fmt.Errorf("keyspace: invalid bit %q at position %d", s[i], i)
		}
	}
	return Key{bits: s}, nil
}

// MustParseKey is like ParseKey but panics on invalid input.
// It is intended for tests and constant initialization.
func MustParseKey(s string) Key {
	k, err := ParseKey(s)
	if err != nil {
		panic(err)
	}
	return k
}

// KeyFromBits builds a Key from a bit slice (false=0, true=1).
func KeyFromBits(bits []bool) Key {
	var b strings.Builder
	b.Grow(len(bits))
	for _, bit := range bits {
		if bit {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return Key{bits: b.String()}
}

// Len returns the number of bits in the key.
func (k Key) Len() int { return len(k.bits) }

// IsEmpty reports whether the key has no bits (the trie root).
func (k Key) IsEmpty() bool { return len(k.bits) == 0 }

// Bit returns the i-th bit (0-based). It panics if i is out of range.
func (k Key) Bit(i int) int {
	if k.bits[i] == '1' {
		return 1
	}
	return 0
}

// String returns the key as a string of '0' and '1'.
func (k Key) String() string { return k.bits }

// Append returns a new key with bit b (0 or 1) appended.
func (k Key) Append(b int) Key {
	if b == 0 {
		return Key{bits: k.bits + "0"}
	}
	return Key{bits: k.bits + "1"}
}

// Prefix returns the first n bits of the key. It panics if n > Len.
func (k Key) Prefix(n int) Key { return Key{bits: k.bits[:n]} }

// IsPrefixOf reports whether k is a prefix of other (equality counts).
func (k Key) IsPrefixOf(other Key) bool {
	return strings.HasPrefix(other.bits, k.bits)
}

// HasPrefix reports whether prefix is a prefix of k.
func (k Key) HasPrefix(prefix Key) bool {
	return strings.HasPrefix(k.bits, prefix.bits)
}

// Equal reports whether two keys are identical.
func (k Key) Equal(other Key) bool { return k.bits == other.bits }

// Compare orders keys lexicographically by bits, which for keys produced by
// the order-preserving hash matches the order of the hashed values.
// It returns -1, 0 or +1.
func (k Key) Compare(other Key) int { return strings.Compare(k.bits, other.bits) }

// CommonPrefixLen returns the number of leading bits shared by k and other.
func (k Key) CommonPrefixLen(other Key) int {
	n := len(k.bits)
	if len(other.bits) < n {
		n = len(other.bits)
	}
	for i := 0; i < n; i++ {
		if k.bits[i] != other.bits[i] {
			return i
		}
	}
	return n
}

// FlipBit returns a copy of k with bit i inverted. It panics if i is out of
// range. The result of flipping bit i of a peer path is the sibling subtree
// the peer keeps routing references for at level i.
func (k Key) FlipBit(i int) Key {
	b := []byte(k.bits)
	if b[i] == '0' {
		b[i] = '1'
	} else {
		b[i] = '0'
	}
	return Key{bits: string(b)}
}

// Sibling returns the key that shares all bits with k except the last one.
// It panics on the empty key.
func (k Key) Sibling() Key {
	if k.IsEmpty() {
		panic("keyspace: empty key has no sibling")
	}
	return k.FlipBit(len(k.bits) - 1)
}

// Parent returns k without its final bit. It panics on the empty key.
func (k Key) Parent() Key {
	if k.IsEmpty() {
		panic("keyspace: empty key has no parent")
	}
	return Key{bits: k.bits[:len(k.bits)-1]}
}
