package keyspace

import (
	"crypto/sha1"
	"strings"
)

// OrderPreservingBits is the number of leading key bits that preserve the
// lexicographic order of the hashed string: 96 bits cover the first 12
// normalized bytes. Beyond that, keys carry a cryptographic tie-break
// suffix, so strings identical in their first 12 bytes still receive
// distinct (but arbitrarily ordered) keys.
const OrderPreservingBits = 96

// DefaultDepth is the bit depth of data keys produced by Hash: a 96-bit
// order-preserving prefix plus a 64-bit tie-break suffix.
const DefaultDepth = OrderPreservingBits + 64

// Hash is GridVine's order-preserving hash function (paper §2.2): it maps a
// string onto a binary key such that the lexicographic order of inputs is
// preserved by the numeric order of outputs, which makes prefix/range
// queries over the overlay possible and produces the skewed key
// distributions P-Grid's unbalanced trie absorbs.
//
// The input is normalized (ASCII lower-cased) and its byte string is read
// as a base-256 fraction in [0,1); the fraction's binary expansion — i.e.
// the bytes' bits, zero-padded — forms the first min(depth,
// OrderPreservingBits) bits. Deeper bits come from a SHA-1 tie-break so
// long strings with a common 12-byte prefix still map to distinct keys;
// those bits are deterministic but not order-preserving.
func Hash(s string, depth int) Key {
	if depth <= 0 {
		depth = DefaultDepth
	}
	norm := normalize(s)

	var b strings.Builder
	b.Grow(depth)
	prefixBits := depth
	if prefixBits > OrderPreservingBits {
		prefixBits = OrderPreservingBits
	}
	for i := 0; i < prefixBits; i++ {
		byteIdx := i / 8
		var c byte
		if byteIdx < len(norm) {
			c = norm[byteIdx]
		}
		if c&(1<<uint(7-i%8)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	if depth > OrderPreservingBits {
		sum := sha1.Sum([]byte(norm))
		for i := 0; i < depth-OrderPreservingBits; i++ {
			byteIdx := (i / 8) % len(sum)
			if sum[byteIdx]&(1<<uint(7-i%8)) != 0 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	return Key{bits: b.String()}
}

// HashDefault applies Hash at DefaultDepth.
func HashDefault(s string) Key { return Hash(s, DefaultDepth) }

// UniformHash is a non-order-preserving cryptographic hash onto the key
// space. It is used where uniform load spreading matters more than range
// queries (ablation experiments; schema-name keys are point lookups only).
func UniformHash(s string, depth int) Key {
	if depth <= 0 {
		depth = DefaultDepth
	}
	sum := sha1.Sum([]byte(s))
	var b strings.Builder
	b.Grow(depth)
	for i := 0; i < depth; i++ {
		byteIdx := (i / 8) % len(sum)
		bitIdx := uint(7 - i%8)
		if sum[byteIdx]&(1<<bitIdx) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return Key{bits: b.String()}
}

// normalize lower-cases ASCII letters; other bytes pass through. Keeping the
// transform byte-wise preserves order on the normalized alphabet.
func normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b.WriteByte(c)
	}
	return b.String()
}
