package keyspace

// CoverRange returns the minimal set of prefixes, none deeper than depth,
// whose subtrees exactly cover the closed key interval [lo, hi] at that
// depth. lo and hi must both have length depth and lo ≤ hi. The result is
// ordered left-to-right across the key space.
//
// Because GridVine's Hash is order-preserving, a range predicate over
// values (e.g. all organisms between "asp" and "asq") becomes a key
// interval, and CoverRange yields the overlay subtrees that must be visited
// to answer it.
func CoverRange(lo, hi Key, depth int) []Key {
	if lo.Len() != depth || hi.Len() != depth {
		panic("keyspace: CoverRange bounds must have length depth")
	}
	if lo.Compare(hi) > 0 {
		return nil
	}
	var out []Key
	var walk func(prefix Key)
	walk = func(prefix Key) {
		// Subtree of prefix spans [prefix·00…0, prefix·11…1] at depth.
		min := prefix
		max := prefix
		for min.Len() < depth {
			min = min.Append(0)
			max = max.Append(1)
		}
		if max.Compare(lo) < 0 || min.Compare(hi) > 0 {
			return // disjoint
		}
		if min.Compare(lo) >= 0 && max.Compare(hi) <= 0 {
			out = append(out, prefix) // fully contained
			return
		}
		if prefix.Len() == depth {
			return // single key outside the range (cannot happen, guarded above)
		}
		walk(prefix.Append(0))
		walk(prefix.Append(1))
	}
	walk(Key{})
	return out
}
