// Package pgrid implements the P-Grid structured overlay GridVine uses at
// its intermediate layer (paper §2.1): a distributed binary search trie in
// which every peer is associated with a path π(p) (a leaf of the virtual
// trie), keeps routing references to the complementary subtree at every
// level of its path, and maintains replica references σ(p) to peers sharing
// its path. The overlay offers the two primitives the mediation layer is
// built on — Retrieve(key) and Update(key, value) — in O(log |Π|) messages,
// plus prefix-subtree and range retrieval enabled by the order-preserving
// hash.
package pgrid

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"time"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// QueryHandler is the application hook invoked when an OpQuery reaches the
// peer responsible for its key: the mediation layer registers a handler that
// runs the local relational query against the peer's triple database.
type QueryHandler func(key keyspace.Key, payload any) (any, error)

// Config carries the tunables of a node / overlay.
type Config struct {
	// RefsPerLevel bounds the routing references kept per trie level
	// (fault-tolerance fan-out). Default 3.
	RefsPerLevel int
	// MaxRetries bounds rerouting attempts after encountering failed peers.
	// Default 3.
	MaxRetries int
	// Seed drives the node's internal randomness (ref choice).
	Seed int64
	// TombstoneCap bounds the deletion tombstones a node retains for
	// anti-entropy reconciliation; the oldest are pruned beyond it.
	// Default 8192.
	TombstoneCap int
	// DigestBucketBits sets how many key bits beyond the node's path the
	// anti-entropy digest buckets span (2^bits buckets max). Default 4.
	DigestBucketBits int
}

func (c Config) withDefaults() Config {
	if c.RefsPerLevel <= 0 {
		c.RefsPerLevel = 3
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.TombstoneCap <= 0 {
		c.TombstoneCap = 8192
	}
	if c.DigestBucketBits <= 0 {
		c.DigestBucketBits = 4
	}
	return c
}

// Node is one P-Grid peer: a leaf of the distributed trie.
type Node struct {
	id  simnet.PeerID
	net simnet.Transport
	cfg Config

	mu        sync.RWMutex
	path      keyspace.Key
	refs      map[int][]simnet.PeerID // trie level → peers in complementary subtree
	replicas  []simnet.PeerID         // σ(p): peers with the same path
	store     map[string][]any        // key bits → stored values
	handler   QueryHandler
	storeHook StoreHook
	batchHook BatchStoreHook

	// tombs records deletions so anti-entropy reconciles them instead of
	// resurrecting the value from a replica that missed the delete. Guarded
	// by mu; bounded by Config.TombstoneCap (oldest-seq pruned beyond it).
	tombs   map[string][]tombEntry
	tombSeq uint64
	tombLen int

	// suspMu guards failure suspicion and the targeted-repair hot-list,
	// both fed by observed send errors on routing and replication paths.
	suspMu  sync.Mutex
	suspect map[simnet.PeerID]int             // consecutive failed exchanges
	hotlist map[simnet.PeerID]map[string]bool // replica → keys whose push failed

	// latMu guards hopLat, the minimum observed per-hop round-trip latency
	// that deadline-aware routing weighs remaining context budget against.
	latMu  sync.Mutex
	hopLat time.Duration

	// rng drives routing tie-breaks. math/rand.Rand is not goroutine-safe
	// and concurrent queries route through the same node, so it has its own
	// mutex rather than piggybacking on the (often read-locked) state lock.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// StoreHook observes successful storage mutations applied at this node
// (routed updates and replica synchronization; not construction-time data
// exchanges). The mediation layer uses it to keep the peer's local
// relational database in sync with the overlay store.
type StoreHook func(op Op, key keyspace.Key, value any)

// SetStoreHook registers the mutation observer.
func (n *Node) SetStoreHook(h StoreHook) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.storeHook = h
}

// StoreMutation is one observed store change, as delivered to a
// BatchStoreHook.
type StoreMutation struct {
	Op    Op // OpInsert or OpDelete (replaces are expanded)
	Key   keyspace.Key
	Value any
}

// BatchStoreHook observes every store change of one applied batch in a
// single call, letting the application layer absorb them in bulk (the
// mediation layer groups triple inserts per database shard). A node with no
// batch hook falls back to firing the per-mutation StoreHook for each
// change.
type BatchStoreHook func(muts []StoreMutation)

// SetBatchStoreHook registers the batched mutation observer.
func (n *Node) SetBatchStoreHook(h BatchStoreHook) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.batchHook = h
}

// NewNode creates a node with the given identity and path, attached to the
// transport. The node must be registered on the transport by the caller
// (overlay builders do this).
func NewNode(id simnet.PeerID, path keyspace.Key, net simnet.Transport, cfg Config) *Node {
	cfg = cfg.withDefaults()
	return &Node{
		id:      id,
		net:     net,
		cfg:     cfg,
		path:    path,
		refs:    make(map[int][]simnet.PeerID),
		store:   make(map[string][]any),
		tombs:   make(map[string][]tombEntry),
		suspect: make(map[simnet.PeerID]int),
		hotlist: make(map[simnet.PeerID]map[string]bool),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(len(id))*2654435761)),
	}
}

// tombEntry is one retained deletion: the deleted value plus a node-local
// sequence number used for oldest-first pruning.
type tombEntry struct {
	value any
	seq   uint64
}

// ID returns the node's transport identity.
func (n *Node) ID() simnet.PeerID { return n.id }

// Path returns the node's current trie path π(p).
func (n *Node) Path() keyspace.Key {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.path
}

// SetQueryHandler registers the application hook for OpQuery requests.
func (n *Node) SetQueryHandler(h QueryHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// Responsible reports whether the node's path is a prefix of key, i.e. the
// node stores data for that key.
func (n *Node) Responsible(key keyspace.Key) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.path.IsPrefixOf(key)
}

// AddRef records a routing reference to peer at the given trie level,
// bounded by RefsPerLevel.
func (n *Node) AddRef(level int, peer simnet.PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addRefLocked(level, peer)
}

func (n *Node) addRefLocked(level int, peer simnet.PeerID) {
	if peer == n.id {
		return
	}
	cur := n.refs[level]
	for _, p := range cur {
		if p == peer {
			return
		}
	}
	if len(cur) >= n.cfg.RefsPerLevel {
		return
	}
	n.refs[level] = append(cur, peer)
}

// RemoveRef drops a (presumed dead) reference at the given level.
func (n *Node) RemoveRef(level int, peer simnet.PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur := n.refs[level]
	for i, p := range cur {
		if p == peer {
			n.refs[level] = append(cur[:i:i], cur[i+1:]...)
			return
		}
	}
}

// Refs returns a copy of the routing references at the given level.
func (n *Node) Refs(level int) []simnet.PeerID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]simnet.PeerID, len(n.refs[level]))
	copy(out, n.refs[level])
	return out
}

// AddReplica records a replica reference σ(p).
func (n *Node) AddReplica(peer simnet.PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if peer == n.id {
		return
	}
	for _, p := range n.replicas {
		if p == peer {
			return
		}
	}
	n.replicas = append(n.replicas, peer)
}

// Replicas returns a copy of the node's replica references.
func (n *Node) Replicas() []simnet.PeerID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]simnet.PeerID, len(n.replicas))
	copy(out, n.replicas)
	return out
}

// StoreSize returns the number of stored values (across all keys).
func (n *Node) StoreSize() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	total := 0
	for _, vs := range n.store {
		total += len(vs)
	}
	return total
}

// LocalKeys returns the stored keys in sorted order (testing/diagnostics).
func (n *Node) LocalKeys() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.store))
	for k := range n.store {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LocalGet returns the values stored locally under key.
func (n *Node) LocalGet(key keyspace.Key) []any {
	n.mu.RLock()
	defer n.mu.RUnlock()
	vs := n.store[key.String()]
	out := make([]any, len(vs))
	copy(out, vs)
	return out
}

// localInsert stores value under key, collapsing exact duplicates. It
// reports whether the store changed.
func (n *Node) localInsert(key string, value any) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.insertLocked(key, value)
}

// insertLocked is localInsert's core; n.mu must be held. A direct insert
// supersedes any matching tombstone: re-publishing a previously deleted
// value must stick, so the tombstone is cleared before the value lands.
func (n *Node) insertLocked(key string, value any) bool {
	n.clearTombLocked(key, value)
	for _, v := range n.store[key] {
		if reflect.DeepEqual(v, value) {
			return false
		}
	}
	n.store[key] = append(n.store[key], value)
	return true
}

// localDelete removes the first value deep-equal to value under key. It
// reports whether the store changed. The deletion is tombstoned whether or
// not the value was present — the delete may have raced ahead of the
// insert it cancels, and anti-entropy must not resurrect either way.
func (n *Node) localDelete(key string, value any) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.recordTombLocked(key, value)
	return n.deleteLocked(key, value)
}

// recordTombLocked notes a deletion for later anti-entropy reconciliation;
// n.mu must be held. An existing equal tombstone is refreshed in place.
func (n *Node) recordTombLocked(key string, value any) {
	n.tombSeq++
	for i, t := range n.tombs[key] {
		if reflect.DeepEqual(t.value, value) {
			n.tombs[key][i].seq = n.tombSeq
			return
		}
	}
	n.tombs[key] = append(n.tombs[key], tombEntry{value: value, seq: n.tombSeq})
	n.tombLen++
	if n.tombLen > n.cfg.TombstoneCap {
		n.pruneTombsLocked()
	}
}

// clearTombLocked removes a tombstone matching (key, value); n.mu held.
func (n *Node) clearTombLocked(key string, value any) {
	ts := n.tombs[key]
	for i, t := range ts {
		if reflect.DeepEqual(t.value, value) {
			n.tombs[key] = append(ts[:i:i], ts[i+1:]...)
			if len(n.tombs[key]) == 0 {
				delete(n.tombs, key)
			}
			n.tombLen--
			return
		}
	}
}

// pruneTombsLocked drops every tombstone older than the newest TombstoneCap
// sequence numbers; n.mu must be held. Sequence numbers are dense (one per
// recorded tombstone), so the cutoff retains at most TombstoneCap entries.
func (n *Node) pruneTombsLocked() {
	cutoff := n.tombSeq - uint64(n.cfg.TombstoneCap)
	for k, ts := range n.tombs {
		kept := ts[:0]
		for _, t := range ts {
			if t.seq > cutoff {
				kept = append(kept, t)
			}
		}
		n.tombLen -= len(ts) - len(kept)
		if len(kept) == 0 {
			delete(n.tombs, k)
			continue
		}
		n.tombs[k] = kept
	}
}

// TombstoneCount returns the number of retained deletion tombstones.
func (n *Node) TombstoneCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.tombLen
}

// deleteLocked is localDelete's core; n.mu must be held.
func (n *Node) deleteLocked(key string, value any) bool {
	vs := n.store[key]
	for i, v := range vs {
		if reflect.DeepEqual(v, value) {
			n.store[key] = append(vs[:i:i], vs[i+1:]...)
			if len(n.store[key]) == 0 {
				delete(n.store, key)
			}
			return true
		}
	}
	return false
}

// nextHopInfo computes, for a key, whether this node is responsible, and if
// not, the references at the divergence level.
func (n *Node) nextHopInfo(key keyspace.Key) (responsible bool, hops []simnet.PeerID) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.path.IsPrefixOf(key) {
		return true, nil
	}
	level := n.path.CommonPrefixLen(key)
	refs := n.refs[level]
	out := make([]simnet.PeerID, len(refs))
	copy(out, refs)
	return false, out
}

// HandleMessage implements simnet.Handler, dispatching overlay RPCs.
func (n *Node) HandleMessage(from simnet.PeerID, msg simnet.Message) (simnet.Message, error) {
	switch msg.Type {
	case msgPing:
		return simnet.Message{Type: msgPing}, nil
	case msgExec:
		req, ok := msg.Payload.(ExecRequest)
		if !ok {
			return simnet.Message{}, fmt.Errorf("pgrid: bad exec payload %T", msg.Payload)
		}
		resp, err := n.handleExec(req)
		if err != nil {
			return simnet.Message{}, err
		}
		return simnet.Message{Type: msgExec, Payload: resp}, nil
	case msgReplicate:
		req, ok := msg.Payload.(ReplicateRequest)
		if !ok {
			return simnet.Message{}, fmt.Errorf("pgrid: bad replicate payload %T", msg.Payload)
		}
		n.applyMutation(req.Key, req.Op, req.Value)
		return simnet.Message{Type: msgReplicate}, nil
	case msgBatch:
		req, ok := msg.Payload.(BatchUpdate)
		if !ok {
			return simnet.Message{}, fmt.Errorf("pgrid: bad batch payload %T", msg.Payload)
		}
		applied := n.applyBatch(req.Entries, true)
		return simnet.Message{Type: msgBatch, Payload: BatchResult{Applied: applied}}, nil
	case msgBatchRep:
		req, ok := msg.Payload.(BatchReplicate)
		if !ok {
			return simnet.Message{}, fmt.Errorf("pgrid: bad batch replicate payload %T", msg.Payload)
		}
		// Replica synchronization applies unconditionally, like the
		// single-mutation replicate path, and never re-replicates.
		n.applyBatchLocal(req.Entries, false)
		return simnet.Message{Type: msgBatchRep}, nil
	case msgSubtree:
		req, ok := msg.Payload.(SubtreeRequest)
		if !ok {
			return simnet.Message{}, fmt.Errorf("pgrid: bad subtree payload %T", msg.Payload)
		}
		return simnet.Message{Type: msgSubtree, Payload: n.handleSubtree(req)}, nil
	case msgSync:
		req, ok := msg.Payload.(SyncRequest)
		if !ok {
			return simnet.Message{}, fmt.Errorf("pgrid: bad sync payload %T", msg.Payload)
		}
		return simnet.Message{Type: msgSync, Payload: n.handleSync(req)}, nil
	case msgDigest:
		req, ok := msg.Payload.(DigestRequest)
		if !ok {
			return simnet.Message{}, fmt.Errorf("pgrid: bad digest payload %T", msg.Payload)
		}
		return simnet.Message{Type: msgDigest, Payload: n.handleDigest(req)}, nil
	case msgRepair:
		req, ok := msg.Payload.(RepairRequest)
		if !ok {
			return simnet.Message{}, fmt.Errorf("pgrid: bad repair payload %T", msg.Payload)
		}
		return simnet.Message{Type: msgRepair, Payload: n.handleRepair(req)}, nil
	default:
		return simnet.Message{}, fmt.Errorf("pgrid: unknown message type %q", msg.Type)
	}
}

// applyMutation performs an insert/delete/replace on the local store and
// notifies the store hook on change (outside the node lock).
func (n *Node) applyMutation(key string, op Op, value any) {
	if op == OpReplace {
		n.applyReplace(key, value)
		return
	}
	changed := false
	switch op {
	case OpInsert:
		changed = n.localInsert(key, value)
	case OpDelete:
		changed = n.localDelete(key, value)
	}
	if !changed {
		return
	}
	n.mu.RLock()
	hook := n.storeHook
	n.mu.RUnlock()
	if hook != nil {
		if k, err := keyspace.ParseKey(key); err == nil {
			hook(op, k, value)
		}
	}
}

// localReplace removes every stored value under key that value Replaces
// (see Replacer) and inserts value, all under one lock acquisition. It
// returns the removed values and whether value was newly inserted (false
// when an exact duplicate was already stored).
func (n *Node) localReplace(key string, value any) (removed []any, inserted bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replaceLocked(key, value)
}

// replaceLocked is localReplace's core; n.mu must be held.
func (n *Node) replaceLocked(key string, value any) (removed []any, inserted bool) {
	rep, _ := value.(Replacer)
	vs := n.store[key]
	kept := make([]any, 0, len(vs)+1)
	dup := false
	for _, v := range vs {
		if rep != nil && rep.Replaces(v) {
			removed = append(removed, v)
			n.recordTombLocked(key, v)
			continue
		}
		if !dup && reflect.DeepEqual(v, value) {
			dup = true
		}
		kept = append(kept, v)
	}
	n.clearTombLocked(key, value)
	if !dup {
		kept = append(kept, value)
	}
	if len(removed) == 0 && dup {
		return nil, false
	}
	n.store[key] = kept
	return removed, !dup
}

// applyBatch applies every batch entry this node is responsible for (every
// entry, when checkResponsible is false), synchronizes its replicas with
// one BatchReplicate message each, and returns the indices of the applied
// entries.
func (n *Node) applyBatch(entries []BatchEntry, checkResponsible bool) []int {
	applied := n.applyBatchLocal(entries, checkResponsible)
	if len(applied) == 0 {
		return applied
	}
	rep := BatchReplicate{Entries: make([]BatchEntry, 0, len(applied))}
	keys := make([]string, 0, len(applied))
	for _, i := range applied {
		rep.Entries = append(rep.Entries, entries[i])
		keys = append(keys, entries[i].Key)
	}
	for _, r := range n.Replicas() {
		// Best-effort, like single-mutation replication — but a failed push
		// is observed, not dropped: the replica becomes suspected and the
		// batch's keys land on its repair hot-list for targeted anti-entropy.
		// One message carries the whole batch.
		//gridvine:serverctx batch replication must complete even if the issuing batch's context is cancelled, or replicas diverge
		if _, err := n.net.Send(context.Background(), n.id, r, simnet.Message{Type: msgBatchRep, Payload: rep}); err != nil {
			n.noteReplicaFailure(r, keys...)
		} else {
			n.clearSuspect(r)
		}
	}
	return applied
}

// applyBatchLocal performs the store mutations of a batch under one lock
// acquisition, then fires the batch store hook once with every change (or
// the per-mutation hook for each, when no batch hook is set). Entries are
// applied in slice order, so same-key delete/insert sequences (mapping
// replacement) keep their submission semantics. Entries whose key fails to
// parse, or — under checkResponsible — lies outside the node's path, are
// not applied.
func (n *Node) applyBatchLocal(entries []BatchEntry, checkResponsible bool) []int {
	applied := make([]int, 0, len(entries))
	var muts []StoreMutation

	n.mu.Lock()
	for i, e := range entries {
		key, err := keyspace.ParseKey(e.Key)
		if err != nil {
			continue
		}
		if checkResponsible && !n.path.IsPrefixOf(key) {
			continue
		}
		switch e.Op {
		case OpInsert:
			if n.insertLocked(e.Key, e.Value) {
				muts = append(muts, StoreMutation{Op: OpInsert, Key: key, Value: e.Value})
			}
		case OpDelete:
			n.recordTombLocked(e.Key, e.Value)
			if n.deleteLocked(e.Key, e.Value) {
				muts = append(muts, StoreMutation{Op: OpDelete, Key: key, Value: e.Value})
			}
		case OpReplace:
			removed, inserted := n.replaceLocked(e.Key, e.Value)
			for _, v := range removed {
				muts = append(muts, StoreMutation{Op: OpDelete, Key: key, Value: v})
			}
			if inserted {
				muts = append(muts, StoreMutation{Op: OpInsert, Key: key, Value: e.Value})
			}
		default:
			continue
		}
		// Duplicate inserts / missing deletes count as applied: the entry's
		// intended end state holds, exactly as the per-op path reports.
		applied = append(applied, i)
	}
	batchHook, hook := n.batchHook, n.storeHook
	n.mu.Unlock()

	if len(muts) == 0 {
		return applied
	}
	switch {
	case batchHook != nil:
		batchHook(muts)
	case hook != nil:
		for _, m := range muts {
			hook(m.Op, m.Key, m.Value)
		}
	}
	return applied
}

// applyReplace runs a replace mutation and fires the store hook once per
// removed value plus once for the insertion, mirroring the delete + insert
// sequence the operation collapses.
func (n *Node) applyReplace(key string, value any) {
	removed, inserted := n.localReplace(key, value)
	if len(removed) == 0 && !inserted {
		return
	}
	n.mu.RLock()
	hook := n.storeHook
	n.mu.RUnlock()
	if hook == nil {
		return
	}
	k, err := keyspace.ParseKey(key)
	if err != nil {
		return
	}
	for _, v := range removed {
		hook(OpDelete, k, v)
	}
	if inserted {
		hook(OpInsert, k, value)
	}
}

// markSuspect records one failed exchange with a peer. Suspected peers are
// deprioritized by routing (ordered last among candidates, never excluded —
// they may have recovered) until a successful exchange clears them.
func (n *Node) markSuspect(id simnet.PeerID) {
	n.suspMu.Lock()
	defer n.suspMu.Unlock()
	n.suspect[id]++
}

// clearSuspect clears failure suspicion after a successful exchange.
func (n *Node) clearSuspect(id simnet.PeerID) {
	n.suspMu.Lock()
	defer n.suspMu.Unlock()
	delete(n.suspect, id)
}

// Suspected reports whether the node currently suspects the peer of being
// dead (at least one observed send failure with no success since).
func (n *Node) Suspected(id simnet.PeerID) bool {
	n.suspMu.Lock()
	defer n.suspMu.Unlock()
	return n.suspect[id] > 0
}

// SuspectCount returns how many peers are currently under suspicion.
func (n *Node) SuspectCount() int {
	n.suspMu.Lock()
	defer n.suspMu.Unlock()
	return len(n.suspect)
}

// noteReplicaFailure records a failed replication push: the replica becomes
// suspected and every affected key is enqueued on its repair hot-list, so
// the next anti-entropy round re-ships exactly what was lost instead of
// rediscovering it by digest comparison.
func (n *Node) noteReplicaFailure(r simnet.PeerID, keys ...string) {
	n.suspMu.Lock()
	defer n.suspMu.Unlock()
	n.suspect[r]++
	hot := n.hotlist[r]
	if hot == nil {
		hot = make(map[string]bool)
		n.hotlist[r] = hot
	}
	for _, k := range keys {
		hot[k] = true
	}
}

// takeHotKeys removes and returns the repair hot-list for a replica, sorted
// for deterministic repair order.
func (n *Node) takeHotKeys(r simnet.PeerID) []string {
	n.suspMu.Lock()
	hot := n.hotlist[r]
	delete(n.hotlist, r)
	n.suspMu.Unlock()
	if len(hot) == 0 {
		return nil
	}
	out := make([]string, 0, len(hot))
	for k := range hot {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RepairBacklog returns the total number of keys awaiting targeted repair
// across all replica hot-lists.
func (n *Node) RepairBacklog() int {
	n.suspMu.Lock()
	defer n.suspMu.Unlock()
	total := 0
	for _, hot := range n.hotlist {
		total += len(hot)
	}
	return total
}

var _ simnet.Handler = (*Node)(nil)
