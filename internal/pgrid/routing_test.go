package pgrid

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

func TestUpdateRetrieveRoundtrip(t *testing.T) {
	_, ov := testOverlay(t, 16, 2, 1)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("EMBL#Organism")
	if _, err := issuer.Update(context.Background(), key, "triple-1"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	values, route, err := issuer.Retrieve(context.Background(), key)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if len(values) != 1 || values[0] != "triple-1" {
		t.Errorf("values = %v", values)
	}
	if route.Hops() > ov.MaxPathDepth()+1 {
		t.Errorf("hops = %d exceeds depth+1", route.Hops())
	}
}

func TestRetrieveFromEveryNode(t *testing.T) {
	_, ov := testOverlay(t, 32, 2, 2)
	key := keyspace.HashDefault("shared-item")
	if _, err := ov.Nodes()[5].Update(context.Background(), key, "v"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	for _, n := range ov.Nodes() {
		values, _, err := n.Retrieve(context.Background(), key)
		if err != nil {
			t.Fatalf("Retrieve from %s: %v", n.ID(), err)
		}
		if len(values) != 1 {
			t.Fatalf("node %s saw %d values", n.ID(), len(values))
		}
	}
}

func TestUpdateIdempotent(t *testing.T) {
	_, ov := testOverlay(t, 8, 2, 3)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("dup")
	for i := 0; i < 3; i++ {
		if _, err := issuer.Update(context.Background(), key, "same-value"); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	values, _, _ := issuer.Retrieve(context.Background(), key)
	if len(values) != 1 {
		t.Errorf("duplicate inserts stored %d copies", len(values))
	}
}

func TestDelete(t *testing.T) {
	_, ov := testOverlay(t, 8, 2, 4)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("temp")
	issuer.Update(context.Background(), key, "a")
	issuer.Update(context.Background(), key, "b")
	if _, err := issuer.Delete(context.Background(), key, "a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	values, _, _ := issuer.Retrieve(context.Background(), key)
	if len(values) != 1 || values[0] != "b" {
		t.Errorf("after delete values = %v", values)
	}
}

func TestMultipleValuesPerKey(t *testing.T) {
	_, ov := testOverlay(t, 8, 2, 5)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("multi")
	for i := 0; i < 5; i++ {
		issuer.Update(context.Background(), key, fmt.Sprintf("v%d", i))
	}
	values, _, _ := issuer.Retrieve(context.Background(), key)
	if len(values) != 5 {
		t.Errorf("values = %d, want 5", len(values))
	}
}

func TestReplication(t *testing.T) {
	_, ov := testOverlay(t, 16, 2, 6)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("replicated-item")
	if _, err := issuer.Update(context.Background(), key, "v"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// Find the responsible nodes: all replicas must hold the value.
	holders := 0
	for _, n := range ov.Nodes() {
		if n.Responsible(key) {
			if got := n.LocalGet(key); len(got) == 1 {
				holders++
			} else {
				t.Errorf("responsible node %s holds %d values", n.ID(), len(got))
			}
		}
	}
	if holders != 2 {
		t.Errorf("holders = %d, want 2 (replica factor)", holders)
	}
}

func TestRetrieveSurvivesPrimaryFailure(t *testing.T) {
	net, ov := testOverlay(t, 32, 2, 7)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("ha-item")
	if _, err := issuer.Update(context.Background(), key, "v"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// Kill one of the responsible replicas (not the issuer).
	var victim *Node
	for _, n := range ov.Nodes() {
		if n.Responsible(key) && n.ID() != issuer.ID() {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Skip("issuer is the only holder")
	}
	net.Fail(victim.ID())
	values, route, err := issuer.Retrieve(context.Background(), key)
	if err != nil {
		t.Fatalf("Retrieve after failure: %v (route %+v)", err, route)
	}
	if len(values) != 1 {
		t.Errorf("values = %v", values)
	}
}

func TestRouteFailsWhenAllReplicasDead(t *testing.T) {
	net, ov := testOverlay(t, 16, 2, 8)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("doomed")
	issuer.Update(context.Background(), key, "v")
	if issuer.Responsible(key) {
		t.Skip("issuer holds the key locally; cannot simulate total loss")
	}
	for _, n := range ov.Nodes() {
		if n.Responsible(key) {
			net.Fail(n.ID())
		}
	}
	_, _, err := issuer.Retrieve(context.Background(), key)
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestQueryHandlerInvoked(t *testing.T) {
	_, ov := testOverlay(t, 16, 2, 9)
	key := keyspace.HashDefault("app-query")
	for _, n := range ov.Nodes() {
		n := n
		n.SetQueryHandler(func(k keyspace.Key, payload any) (any, error) {
			return fmt.Sprintf("%s answered %v", n.ID(), payload), nil
		})
	}
	issuer := ov.Nodes()[3]
	result, route, err := issuer.Query(context.Background(), key, "q1")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	s, ok := result.(string)
	if !ok || s == "" {
		t.Fatalf("result = %v", result)
	}
	// The answering peer must be responsible for the key.
	var answerer simnet.PeerID
	if route.Hops() == 0 {
		answerer = issuer.ID()
	} else {
		answerer = route.Contacted[route.Hops()-1]
	}
	if !ov.Node(answerer).Responsible(key) {
		t.Errorf("answerer %s not responsible for key", answerer)
	}
}

func TestQueryWithoutHandlerFails(t *testing.T) {
	_, ov := testOverlay(t, 4, 2, 10)
	key := keyspace.HashDefault("no-handler")
	_, _, err := ov.Nodes()[0].Query(context.Background(), key, "q")
	if err == nil {
		t.Error("Query without handler should fail")
	}
}

func TestQueryRecursive(t *testing.T) {
	_, ov := testOverlay(t, 32, 2, 11)
	key := keyspace.HashDefault("recursive-query")
	for _, n := range ov.Nodes() {
		n.SetQueryHandler(func(k keyspace.Key, payload any) (any, error) {
			return "ok", nil
		})
	}
	issuer := ov.Nodes()[1]
	result, route, err := issuer.QueryRecursive(key, "q", 16)
	if err != nil {
		t.Fatalf("QueryRecursive: %v", err)
	}
	if result != "ok" {
		t.Errorf("result = %v", result)
	}
	if issuer.Responsible(key) {
		if route.Hops() != 0 {
			t.Errorf("local answer should have 0 hops, got %d", route.Hops())
		}
	} else if route.Hops() == 0 {
		t.Error("remote answer should list contacted peers")
	}
}

func TestQueryRecursiveTTLExhausted(t *testing.T) {
	_, ov := testOverlay(t, 32, 2, 12)
	key := keyspace.HashDefault("ttl-test")
	issuer := ov.Nodes()[0]
	if issuer.Responsible(key) {
		t.Skip("issuer responsible; TTL irrelevant")
	}
	_, _, err := issuer.QueryRecursive(key, "q", 0)
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestRoutingCostLogarithmic(t *testing.T) {
	// Hop counts must stay ≤ trie depth (plus final hop) at every size.
	for _, peers := range []int{8, 32, 128} {
		_, ov := testOverlay(t, peers, 2, int64(peers))
		depth := ov.MaxPathDepth()
		issuer := ov.Nodes()[0]
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 30; i++ {
			key := keyspace.HashDefault(fmt.Sprintf("key-%d-%d", peers, rng.Int()))
			_, route, err := issuer.Retrieve(context.Background(), key)
			if err != nil {
				t.Fatalf("Retrieve: %v", err)
			}
			if route.Hops() > depth+1 {
				t.Errorf("peers=%d hops=%d depth=%d", peers, route.Hops(), depth)
			}
		}
	}
}

// Property: routing from any node for any key terminates at a responsible
// peer with bounded hops.
func TestRoutingConvergenceProperty(t *testing.T) {
	_, ov := testOverlay(t, 64, 2, 13)
	depth := ov.MaxPathDepth()
	f := func(seed int64, nodeIdx uint8) bool {
		issuer := ov.Nodes()[int(nodeIdx)%len(ov.Nodes())]
		key := keyspace.HashDefault(fmt.Sprintf("k%d", seed))
		_, route, err := issuer.Retrieve(context.Background(), key)
		return err == nil && route.Hops() <= depth+1
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(14))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPingMessage(t *testing.T) {
	net, ov := testOverlay(t, 4, 2, 15)
	resp, err := net.Send(context.Background(), ov.Nodes()[0].ID(), ov.Nodes()[1].ID(), simnet.Message{Type: msgPing})
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if resp.Type != msgPing {
		t.Errorf("resp.Type = %q", resp.Type)
	}
}

func TestUnknownMessageType(t *testing.T) {
	net, ov := testOverlay(t, 4, 2, 16)
	_, err := net.Send(context.Background(), ov.Nodes()[0].ID(), ov.Nodes()[1].ID(), simnet.Message{Type: "bogus"})
	if err == nil {
		t.Error("unknown message type should error")
	}
}

func TestBadPayloads(t *testing.T) {
	net, ov := testOverlay(t, 4, 2, 17)
	to := ov.Nodes()[1].ID()
	from := ov.Nodes()[0].ID()
	for _, typ := range []string{msgExec, msgReplicate, msgSubtree} {
		if _, err := net.Send(context.Background(), from, to, simnet.Message{Type: typ, Payload: 42}); err == nil {
			t.Errorf("bad payload for %s should error", typ)
		}
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	_, ov := testOverlay(t, 4, 2, 18)
	n := ov.Nodes()[0]
	if _, err := n.handleExec(ExecRequest{Key: "xyz", Op: OpGet}); err == nil {
		t.Error("invalid key should be rejected")
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpGet: "get", OpInsert: "insert", OpDelete: "delete", OpQuery: "query", Op(99): "unknown"}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestNodeRefManagement(t *testing.T) {
	net := simnet.NewNetwork()
	n := NewNode("n1", keyspace.MustParseKey("01"), net, Config{RefsPerLevel: 2})
	n.AddRef(0, "a")
	n.AddRef(0, "b")
	n.AddRef(0, "c")  // over capacity, dropped
	n.AddRef(0, "a")  // duplicate, dropped
	n.AddRef(0, "n1") // self, dropped
	if got := n.Refs(0); len(got) != 2 {
		t.Errorf("refs = %v", got)
	}
	n.RemoveRef(0, "a")
	if got := n.Refs(0); len(got) != 1 || got[0] != "b" {
		t.Errorf("refs after remove = %v", got)
	}
	n.RemoveRef(0, "ghost") // no-op
	n.AddReplica("r1")
	n.AddReplica("r1")
	n.AddReplica("n1")
	if got := n.Replicas(); len(got) != 1 {
		t.Errorf("replicas = %v", got)
	}
}
