package pgrid

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// batchTestEntries builds n insert entries over a spread of keys.
func batchTestEntries(n int) []BatchEntry {
	out := make([]BatchEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, BatchEntry{
			Key:   keyspace.HashDefault(fmt.Sprintf("item-%04d", i)).String(),
			Op:    OpInsert,
			Value: fmt.Sprintf("value-%04d", i),
		})
	}
	return out
}

// storeSnapshot collects every node's stored (key → values) map.
func storeSnapshot(ov *Overlay) map[simnet.PeerID]map[string][]any {
	out := map[simnet.PeerID]map[string][]any{}
	for _, n := range ov.Nodes() {
		m := map[string][]any{}
		for _, k := range n.LocalKeys() {
			key := keyspace.MustParseKey(k)
			m[k] = n.LocalGet(key)
		}
		out[n.ID()] = m
	}
	return out
}

// TestWriteBatchMatchesPerOp: a batched write over many keys must leave
// every node's store byte-identical to the per-operation loop, while
// shipping far fewer routed groups than entries.
func TestWriteBatchMatchesPerOp(t *testing.T) {
	entries := batchTestEntries(120)

	netA, ovA := testOverlay(t, 32, 2, 77)
	netB, ovB := testOverlay(t, 32, 2, 77)

	netA.ResetStats()
	out, err := ovA.Nodes()[0].WriteBatch(context.Background(), entries)
	if err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	batchMsgs := netA.Stats().Messages

	netB.ResetStats()
	issuerB := ovB.Nodes()[0]
	for _, e := range entries {
		if _, err := issuerB.Update(context.Background(), keyspace.MustParseKey(e.Key), e.Value); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	perOpMsgs := netB.Stats().Messages

	if got := out.Applied(); got != len(entries) {
		t.Fatalf("applied %d of %d entries (failed %d, skipped %d)", got, len(entries), out.Failed(), out.Skipped())
	}
	if out.Groups >= len(entries) {
		t.Errorf("batch shipped %d groups for %d entries — no grouping happened", out.Groups, len(entries))
	}
	if batchMsgs >= perOpMsgs {
		t.Errorf("batched write cost %d messages, per-op loop %d", batchMsgs, perOpMsgs)
	}

	snapA, snapB := storeSnapshot(ovA), storeSnapshot(ovB)
	if !reflect.DeepEqual(snapA, snapB) {
		t.Error("batched and per-op stores diverged")
	}
}

// TestWriteBatchSameKeyOrder: same-key entries apply in submission order,
// so a delete-then-insert sequence lands as a replacement.
func TestWriteBatchSameKeyOrder(t *testing.T) {
	_, ov := testOverlay(t, 16, 2, 78)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("slot")
	if _, err := issuer.Update(context.Background(), key, "old"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	out, err := issuer.WriteBatch(context.Background(), []BatchEntry{
		{Key: key.String(), Op: OpDelete, Value: "old"},
		{Key: key.String(), Op: OpInsert, Value: "new"},
	})
	if err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	if out.Applied() != 2 {
		t.Fatalf("applied %d of 2", out.Applied())
	}
	values, _, err := issuer.Retrieve(context.Background(), key)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if len(values) != 1 || values[0] != "new" {
		t.Errorf("values = %v, want [new]", values)
	}
}

// TestWriteBatchReplicates: replicas of the responsible leaf receive the
// batch's entries through the batched synchronization message.
func TestWriteBatchReplicates(t *testing.T) {
	_, ov := testOverlay(t, 16, 2, 79)
	issuer := ov.Nodes()[0]
	entries := batchTestEntries(40)
	if _, err := issuer.WriteBatch(context.Background(), entries); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	for _, e := range entries {
		key := keyspace.MustParseKey(e.Key)
		for _, n := range ov.Nodes() {
			if !n.Responsible(key) {
				continue
			}
			found := false
			for _, v := range n.LocalGet(key) {
				if v == e.Value {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %s responsible for %s but missing %v", n.ID(), e.Key, e.Value)
			}
		}
	}
}

// TestWriteBatchCancellation: cancelling mid-batch returns ctx.Err() with
// the not-yet-attempted entries skipped. Keys are uniform-hashed so the
// batch spans many leaves (the order-preserving hash would cluster them
// onto one group, which could complete before the deadline).
func TestWriteBatchCancellation(t *testing.T) {
	net, ov := testOverlay(t, 32, 2, 80)
	net.SetSendDelay(2 * time.Millisecond)
	issuer := ov.Nodes()[0]
	entries := make([]BatchEntry, 0, 200)
	for i := 0; i < 200; i++ {
		entries = append(entries, BatchEntry{
			Key:   keyspace.UniformHash(fmt.Sprintf("item-%04d", i), keyspace.DefaultDepth).String(),
			Op:    OpInsert,
			Value: fmt.Sprintf("value-%04d", i),
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	out, err := issuer.WriteBatch(ctx, entries)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if out.Skipped() == 0 {
		t.Error("no entry skipped despite mid-batch cancellation")
	}
	if out.Applied()+out.Failed()+out.Skipped() != len(entries) {
		t.Errorf("outcome does not cover the batch: %d+%d+%d != %d",
			out.Applied(), out.Failed(), out.Skipped(), len(entries))
	}
}

// TestRetryBudgetFailsFast: with per-hop latency observed and a deadline
// too tight to cover another hop, a rerouting round is abandoned with
// ErrRetryBudget instead of burning the remaining budget.
func TestRetryBudgetFailsFast(t *testing.T) {
	net, ov := testOverlay(t, 32, 2, 81)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("budget-target")
	if issuer.Responsible(key) {
		t.Skip("issuer responsible; no routing to starve")
	}

	// Prime the per-hop latency estimate under a slow network.
	net.SetSendDelay(20 * time.Millisecond)
	if _, _, err := issuer.Retrieve(context.Background(), key); err != nil {
		t.Fatalf("prime Retrieve: %v", err)
	}
	if issuer.HopLatencyEstimate() < 20*time.Millisecond {
		t.Fatalf("hop latency estimate %v not primed", issuer.HopLatencyEstimate())
	}

	// Make the first pass dead-end instantly (drops cost no delay), leaving
	// a remaining budget far below one observed hop.
	net.SetSendDelay(0)
	net.DropNext(1000)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := issuer.Retrieve(ctx, key)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if elapsed := time.Since(start); elapsed > 8*time.Millisecond {
		t.Errorf("fail-fast took %v, should not have waited out the deadline", elapsed)
	}
}
