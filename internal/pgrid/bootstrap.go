package pgrid

import (
	"fmt"
	"math/rand"
	"reflect"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// BootstrapOptions parameterizes the self-organizing construction of the
// overlay by repeated pairwise peer exchanges (Aberer's P-Grid construction
// algorithm): peers start with empty paths and, meeting at random,
// progressively specialize into complementary subtrees, exchange data so
// each holds only the items matching its path, and record references to the
// complementary side at the split level. Peers meeting with identical paths
// at MaxDepth become mutual replicas.
type BootstrapOptions struct {
	Peers int
	// MaxDepth bounds trie depth; peers meeting at MaxDepth with the same
	// path become replicas rather than splitting further. Choose
	// ≈ log2(Peers / replicaTarget).
	MaxDepth int
	// Meetings is the number of random pairwise exchanges to run.
	// Convergence needs O(Peers · MaxDepth · c); default 60·Peers.
	Meetings int
	Config   Config
	Rng      *rand.Rand
}

// Bootstrap builds an overlay through randomized pairwise exchanges.
// Unlike Build, the resulting trie shape is emergent: the test suite checks
// the structural invariants (prefix-free cover, routability) rather than an
// exact shape.
func Bootstrap(net simnet.Registrar, opts BootstrapOptions) (*Overlay, error) {
	if opts.Peers < 2 {
		return nil, fmt.Errorf("pgrid: Bootstrap needs ≥2 peers, got %d", opts.Peers)
	}
	if opts.Rng == nil {
		return nil, fmt.Errorf("pgrid: Rng is required")
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = log2ceil(opts.Peers / 2)
	}
	if opts.Meetings <= 0 {
		opts.Meetings = 60 * opts.Peers
	}

	ov := &Overlay{byID: make(map[simnet.PeerID]*Node), byPath: make(map[string][]*Node)}
	for i := 0; i < opts.Peers; i++ {
		id := simnet.PeerID(fmt.Sprintf("peer-%03d", i))
		cfg := opts.Config
		cfg.Seed = opts.Rng.Int63()
		node := NewNode(id, keyspace.Key{}, net, cfg)
		ov.nodes = append(ov.nodes, node)
		ov.byID[id] = node
		net.Register(id, node)
	}

	for m := 0; m < opts.Meetings; m++ {
		a := ov.nodes[opts.Rng.Intn(len(ov.nodes))]
		b := ov.nodes[opts.Rng.Intn(len(ov.nodes))]
		if a == b {
			continue
		}
		meet(a, b, opts.MaxDepth)
	}

	ov.reindexPaths()
	return ov, nil
}

// meet performs one pairwise exchange between two peers (construction time:
// the algorithm runs where both peer states are reachable, mirroring the
// original protocol's exchange messages).
func meet(a, b *Node, maxDepth int) {
	// Lock in a global order to stay deadlock-free under concurrent meets.
	first, second := a, b
	if second.id < first.id {
		first, second = second, first
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()

	pa, pb := a.path, b.path
	l := pa.CommonPrefixLen(pb)

	switch {
	case l == pa.Len() && l == pb.Len():
		// Identical paths.
		if l >= maxDepth {
			// Become replicas and synchronize stores.
			addReplicaLocked(a, b.id)
			addReplicaLocked(b, a.id)
			syncStoresLocked(a, b)
			return
		}
		// Split: a takes 0, b takes 1; each references the other at the new
		// level and hands over the items that now belong to the other side.
		a.path = pa.Append(0)
		b.path = pb.Append(1)
		a.addRefLocked(l, b.id)
		b.addRefLocked(l, a.id)
		exchangeOnSplitLocked(a, b)
		// Exchange some references to seed routing at lower levels.
		crossPollinateRefsLocked(a, b, l)

	case l == pa.Len(): // π(a) is a proper prefix of π(b): a specializes.
		// a takes the branch complementary to b's next bit, so the pair
		// covers b's sibling subtree; both gain a reference at level l.
		a.path = pa.Append(1 - pb.Bit(l))
		a.addRefLocked(l, b.id)
		b.addRefLocked(l, a.id)
		exchangeOnSplitLocked(a, b)
		crossPollinateRefsLocked(a, b, l)

	case l == pb.Len(): // symmetric case.
		b.path = pb.Append(1 - pa.Bit(l))
		a.addRefLocked(l, b.id)
		b.addRefLocked(l, a.id)
		exchangeOnSplitLocked(a, b)
		crossPollinateRefsLocked(a, b, l)

	default:
		// Paths diverge at level l < both lengths: reference exchange, plus
		// relocation of any items a previous split left misplaced.
		a.addRefLocked(l, b.id)
		b.addRefLocked(l, a.id)
		exchangeOnSplitLocked(a, b)
		crossPollinateRefsLocked(a, b, l)
	}
}

// exchangeOnSplitLocked moves items to whichever of the two peers now
// matches their keys; items matching neither stay put (they will migrate on
// later meetings). Callers hold both locks.
func exchangeOnSplitLocked(a, b *Node) {
	moveMatching := func(from, to *Node) {
		for k, vs := range from.store {
			key, err := keyspace.ParseKey(k)
			if err != nil {
				continue
			}
			if !from.path.IsPrefixOf(key) && to.path.IsPrefixOf(key) {
				for _, v := range vs {
					appendUniqueLocked(to, k, v)
				}
				delete(from.store, k)
			}
		}
	}
	moveMatching(a, b)
	moveMatching(b, a)
}

// crossPollinateRefsLocked lets both peers copy a few of each other's
// references at levels shallower than the meeting level, accelerating
// routing-table completion. Callers hold both locks.
func crossPollinateRefsLocked(a, b *Node, level int) {
	for lv := 0; lv < level; lv++ {
		for _, r := range b.refs[lv] {
			a.addRefLocked(lv, r)
		}
		for _, r := range a.refs[lv] {
			b.addRefLocked(lv, r)
		}
	}
}

func addReplicaLocked(n *Node, peer simnet.PeerID) {
	if peer == n.id {
		return
	}
	for _, p := range n.replicas {
		if p == peer {
			return
		}
	}
	n.replicas = append(n.replicas, peer)
}

func syncStoresLocked(a, b *Node) {
	for k, vs := range a.store {
		for _, v := range vs {
			appendUniqueLocked(b, k, v)
		}
	}
	for k, vs := range b.store {
		for _, v := range vs {
			appendUniqueLocked(a, k, v)
		}
	}
}

func appendUniqueLocked(n *Node, key string, value any) {
	for _, v := range n.store[key] {
		if reflect.DeepEqual(v, value) {
			return
		}
	}
	n.store[key] = append(n.store[key], value)
}

// reindexPaths rebuilds the byPath index after paths changed.
func (ov *Overlay) reindexPaths() {
	ov.byPath = make(map[string][]*Node)
	for _, n := range ov.nodes {
		p := n.Path().String()
		ov.byPath[p] = append(ov.byPath[p], n)
	}
}

// Join adds a new peer to a built overlay: it adopts the leaf of an existing
// bootstrap peer, either splitting the leaf (if the trie may deepen) or
// joining its replica set, then copies the relevant data and references.
// maxDepth bounds trie growth.
func (ov *Overlay) Join(net simnet.Registrar, id simnet.PeerID, bootstrap *Node, maxDepth int, cfg Config, rng *rand.Rand) (*Node, error) {
	if _, exists := ov.byID[id]; exists {
		return nil, fmt.Errorf("pgrid: peer %s already in overlay", id)
	}
	cfg.Seed = rng.Int63()
	node := NewNode(id, keyspace.Key{}, net, cfg)
	net.Register(id, node)

	meet(node, bootstrap, maxDepth)
	// A few more meetings with random peers complete the routing table.
	for i := 0; i < 4*maxDepth && len(ov.nodes) > 0; i++ {
		meet(node, ov.nodes[rng.Intn(len(ov.nodes))], maxDepth)
	}

	ov.nodes = append(ov.nodes, node)
	ov.byID[id] = node
	ov.reindexPaths()
	return node, nil
}

func log2ceil(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	if d == 0 {
		d = 1
	}
	return d
}
