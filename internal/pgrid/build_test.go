package pgrid

import (
	"context"
	"math/rand"
	"testing"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

func testOverlay(t *testing.T, peers, replicaFactor int, seed int64) (*simnet.Network, *Overlay) {
	t.Helper()
	net := simnet.NewNetwork()
	ov, err := Build(net, BuildOptions{
		Peers:         peers,
		ReplicaFactor: replicaFactor,
		Rng:           rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return net, ov
}

func TestBuildValidation(t *testing.T) {
	net := simnet.NewNetwork()
	if _, err := Build(net, BuildOptions{Peers: 0, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("Build with 0 peers should fail")
	}
	if _, err := Build(net, BuildOptions{Peers: 4}); err == nil {
		t.Error("Build without Rng should fail")
	}
}

func TestBalancedPathsComplete(t *testing.T) {
	for leaves := 1; leaves <= 40; leaves++ {
		paths := balancedPaths(leaves)
		if len(paths) != leaves {
			t.Fatalf("leaves=%d produced %d paths", leaves, len(paths))
		}
		assertCompleteCover(t, paths)
		// Depth spread ≤ 1.
		min, max := paths[0].Len(), paths[0].Len()
		for _, p := range paths {
			if p.Len() < min {
				min = p.Len()
			}
			if p.Len() > max {
				max = p.Len()
			}
		}
		if max-min > 1 {
			t.Errorf("leaves=%d depth spread %d–%d", leaves, min, max)
		}
	}
}

func assertCompleteCover(t *testing.T, paths []keyspace.Key) {
	t.Helper()
	maxDepth := 0
	for _, p := range paths {
		if p.Len() > maxDepth {
			maxDepth = p.Len()
		}
	}
	for i := range paths {
		for j := range paths {
			if i != j && paths[i].IsPrefixOf(paths[j]) {
				t.Fatalf("path %v is prefix of %v", paths[i], paths[j])
			}
		}
	}
	var total uint64
	for _, p := range paths {
		total += 1 << uint(maxDepth-p.Len())
	}
	if total != 1<<uint(maxDepth) {
		t.Fatalf("cover %d/%d at depth %d, paths=%v", total, uint64(1)<<uint(maxDepth), maxDepth, paths)
	}
}

func TestBuildCoverageAndReplicas(t *testing.T) {
	_, ov := testOverlay(t, 32, 2, 1)
	if err := ov.CheckCoverage(); err != nil {
		t.Fatalf("coverage: %v", err)
	}
	// Every node should have exactly one replica (32 peers / 16 leaves).
	for _, n := range ov.Nodes() {
		if len(n.Replicas()) != 1 {
			t.Errorf("node %s has %d replicas, want 1", n.ID(), len(n.Replicas()))
		}
	}
}

func TestBuildRefsPresent(t *testing.T) {
	_, ov := testOverlay(t, 64, 2, 2)
	for _, n := range ov.Nodes() {
		for l := 0; l < n.Path().Len(); l++ {
			if len(n.Refs(l)) == 0 {
				t.Errorf("node %s (path %s) missing refs at level %d", n.ID(), n.Path(), l)
			}
		}
	}
}

func TestBuildOddPeerCount(t *testing.T) {
	_, ov := testOverlay(t, 13, 3, 3)
	if err := ov.CheckCoverage(); err != nil {
		t.Fatalf("coverage: %v", err)
	}
	if len(ov.Nodes()) != 13 {
		t.Errorf("nodes = %d", len(ov.Nodes()))
	}
}

func TestAdaptivePathsSkewedSample(t *testing.T) {
	// Sample heavily skewed toward keys starting 000…: the adaptive trie
	// must be deeper on that side.
	var sample []keyspace.Key
	for i := 0; i < 900; i++ {
		sample = append(sample, keyspace.Hash("aaa", 16).FlipBit(15-i%8))
	}
	for i := 0; i < 100; i++ {
		sample = append(sample, keyspace.Hash("zzz", 16).FlipBit(15-i%8))
	}
	paths, weights := adaptivePaths(sample, 16, 2)
	assertCompleteCover(t, paths)
	if len(paths) < 4 {
		t.Fatalf("paths = %d", len(paths))
	}
	if len(weights) != len(paths) {
		t.Fatalf("weights = %d, paths = %d", len(weights), len(paths))
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total != len(sample) {
		t.Errorf("weights sum to %d, want %d", total, len(sample))
	}
	// The subtree holding "aaa" keys should be split deeper than the one
	// holding "zzz" keys.
	aKey := keyspace.Hash("aaa", 16)
	zKey := keyspace.Hash("zzz", 16)
	depthOf := func(k keyspace.Key) int {
		for _, p := range paths {
			if p.IsPrefixOf(k) {
				return p.Len()
			}
		}
		t.Fatalf("no leaf covers %v", k)
		return 0
	}
	if depthOf(aKey) <= depthOf(zKey) {
		t.Errorf("dense side depth %d should exceed sparse side depth %d", depthOf(aKey), depthOf(zKey))
	}
}

func TestBuildUnbalancedCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sample []keyspace.Key
	for i := 0; i < 500; i++ {
		// Zipf-flavoured skew: most keys share a short alphabet prefix.
		s := string(rune('a' + rng.Intn(3)))
		if rng.Intn(10) == 0 {
			s = string(rune('a' + rng.Intn(26)))
		}
		sample = append(sample, keyspace.HashDefault(s+"suffix"))
	}
	net := simnet.NewNetwork()
	ov, err := Build(net, BuildOptions{Peers: 24, ReplicaFactor: 2, SampleKeys: sample, Rng: rng})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := ov.CheckCoverage(); err != nil {
		t.Fatalf("coverage: %v", err)
	}
}

func TestOverlayAccessors(t *testing.T) {
	_, ov := testOverlay(t, 8, 2, 7)
	if ov.Node("peer-003") == nil {
		t.Error("Node lookup failed")
	}
	if ov.Node("ghost") != nil {
		t.Error("ghost lookup should be nil")
	}
	rng := rand.New(rand.NewSource(1))
	if ov.RandomNode(rng) == nil {
		t.Error("RandomNode returned nil")
	}
	if got := len(ov.Paths()); got != 4 {
		t.Errorf("distinct paths = %d, want 4", got)
	}
	if ov.MaxPathDepth() != 2 {
		t.Errorf("MaxPathDepth = %d, want 2", ov.MaxPathDepth())
	}
}

func TestStoreLoadStats(t *testing.T) {
	_, ov := testOverlay(t, 4, 1, 11)
	issuer := ov.Nodes()[0]
	for i := 0; i < 40; i++ {
		k := keyspace.HashDefault(string(rune('a' + i%26)))
		if _, err := issuer.Update(context.Background(), k, i); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	min, max, mean := ov.StoreLoadStats()
	if mean <= 0 {
		t.Errorf("mean load = %v", mean)
	}
	if min > max {
		t.Errorf("min %d > max %d", min, max)
	}
}
