package pgrid

import (
	"context"
	"testing"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// Recursive routing must forward around failed peers: each forwarding step
// tries its reference candidates in order and skips unreachable ones.
func TestRecursiveRoutingSurvivesIntermediateFailure(t *testing.T) {
	net, ov := testOverlay(t, 32, 2, 51)
	key := keyspace.HashDefault("recursive-ha")
	for _, n := range ov.Nodes() {
		n.SetQueryHandler(func(k keyspace.Key, payload any) (any, error) {
			return "ok", nil
		})
	}
	issuer := ov.Nodes()[0]
	if issuer.Responsible(key) {
		t.Skip("issuer responsible; no forwarding to disturb")
	}
	// Fail an intermediate peer so a forwarding choice can be dead.
	failedSomething := false
	for _, n := range ov.Nodes()[1:] {
		if !n.Responsible(key) && len(n.Replicas()) > 0 {
			net.Fail(n.ID())
			failedSomething = true
			break
		}
	}
	if !failedSomething {
		t.Skip("no intermediate peer to fail")
	}
	result, _, err := issuer.QueryRecursive(key, "q", 16)
	if err != nil {
		t.Fatalf("QueryRecursive with failed intermediate: %v", err)
	}
	if result != "ok" {
		t.Errorf("result = %v", result)
	}
}

func TestCandidateHopsFallbackLevels(t *testing.T) {
	// When the exact-level refs are excluded, shallower-level refs must
	// still be offered so routing can detour.
	_, ov := testOverlay(t, 32, 2, 52)
	key := keyspace.HashDefault("fallback-key")
	var issuer *Node
	for _, n := range ov.Nodes() {
		if !n.Responsible(key) && n.Path().Len() >= 2 {
			issuer = n
			break
		}
	}
	if issuer == nil {
		t.Skip("no suitable issuer")
	}
	exclude := map[simnet.PeerID]bool{}
	level := issuer.Path().CommonPrefixLen(key)
	for _, r := range issuer.Refs(level) {
		exclude[r] = true
	}
	rest := issuer.candidateHops(key, exclude)
	if len(rest) == 0 && anyRefsBelow(issuer, level) {
		t.Error("no fallback candidates offered despite shallower refs")
	}
}

func anyRefsBelow(n *Node, level int) bool {
	for l := 0; l < level; l++ {
		if len(n.Refs(l)) > 0 {
			return true
		}
	}
	return false
}

func TestUpdateWhileReplicaDown(t *testing.T) {
	// An update while one replica is down must still succeed (best-effort
	// replication) and the surviving copy must serve reads.
	net, ov := testOverlay(t, 16, 2, 53)
	key := keyspace.HashDefault("degraded-write")
	var holders []*Node
	for _, n := range ov.Nodes() {
		if n.Responsible(key) {
			holders = append(holders, n)
		}
	}
	if len(holders) < 2 {
		t.Skip("need 2 replicas")
	}
	issuer := ov.Nodes()[0]
	if issuer == holders[0] || issuer == holders[1] {
		issuer = holders[0]
	}
	net.Fail(holders[1].ID())
	if _, err := issuer.Update(context.Background(), key, "v"); err != nil {
		t.Fatalf("Update with replica down: %v", err)
	}
	values, _, err := issuer.Retrieve(context.Background(), key)
	if err != nil || len(values) != 1 {
		t.Fatalf("Retrieve after degraded write: %v %v", values, err)
	}
	// The downed replica never saw the write.
	if got := holders[1].LocalGet(key); len(got) != 0 {
		t.Errorf("failed replica has data: %v", got)
	}
}
