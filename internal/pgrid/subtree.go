package pgrid

import (
	"context"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// handleSubtree answers a subtree-enumeration step: local items under the
// prefix, plus references into sibling branches of the prefix's subtree
// (levels between the prefix length and this node's depth), plus replicas —
// so the issuer can continue the traversal and route around failures.
func (n *Node) handleSubtree(req SubtreeRequest) SubtreeResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()

	resp := SubtreeResponse{Path: n.path.String()}
	prefix := req.Prefix
	for k, vs := range n.store {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			for _, v := range vs {
				resp.Items = append(resp.Items, SubtreeItem{Key: k, Value: v})
			}
		}
	}
	// References that cover the rest of the prefix subtree: for every level
	// l ≥ len(prefix) of this node's path, the complementary refs at l lie
	// under the prefix as well.
	for l := len(prefix); l < n.path.Len(); l++ {
		resp.Onward = append(resp.Onward, n.refs[l]...)
	}
	resp.Replicas = append(resp.Replicas, n.replicas...)
	return resp
}

// SubtreeRetrieve enumerates every (key, value) stored under the given
// prefix by walking the distributed trie. The traversal is issuer-driven:
// the issuer routes to one peer inside the prefix, then repeatedly follows
// the Onward references returned by visited peers. Items are deduplicated
// per leaf path so replica sets contribute once. The returned Route counts
// the messages spent. Cancelling ctx abandons the walk with the items
// gathered so far discarded and ctx.Err() returned.
func (n *Node) SubtreeRetrieve(ctx context.Context, prefix keyspace.Key) ([]SubtreeItem, Route, error) {
	var route Route

	// Seed the frontier: route toward an arbitrary key inside the prefix.
	probe := prefix
	for probe.Len() < keyspace.DefaultDepth {
		probe = probe.Append(0)
	}

	frontier := []simnet.PeerID{}
	visited := map[simnet.PeerID]bool{}
	coveredPaths := map[string]bool{}
	var items []SubtreeItem

	visit := func(id simnet.PeerID) {
		if visited[id] {
			return
		}
		visited[id] = true
		var resp SubtreeResponse
		if id == n.id {
			resp = n.handleSubtree(SubtreeRequest{Prefix: prefix.String()})
		} else {
			route.Messages++
			msg, err := n.net.Send(ctx, n.id, id, simnet.Message{Type: msgSubtree, Payload: SubtreeRequest{Prefix: prefix.String()}})
			if err != nil {
				return
			}
			route.Contacted = append(route.Contacted, id)
			var ok bool
			resp, ok = msg.Payload.(SubtreeResponse)
			if !ok {
				return
			}
		}
		if !coveredPaths[resp.Path] {
			coveredPaths[resp.Path] = true
			items = append(items, resp.Items...)
		}
		frontier = append(frontier, resp.Onward...)
		// Replicas are enqueued as fallbacks: if their leaf path was already
		// covered they are skipped cheaply, but they answer for crashed
		// primaries.
		frontier = append(frontier, resp.Replicas...)
	}

	// Find an entry point inside the prefix. If this node is already inside,
	// start locally; otherwise route.
	if prefix.IsPrefixOf(n.Path()) || n.Path().IsPrefixOf(prefix) {
		visit(n.id)
	} else {
		_, r, err := n.Retrieve(ctx, probe)
		route.Messages += r.Messages
		route.Retries += r.Retries
		route.Contacted = append(route.Contacted, r.Contacted...)
		if err != nil {
			return nil, route, err
		}
		entry := r.Contacted[len(r.Contacted)-1]
		visit(entry)
	}

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, route, err
		}
		next := frontier[0]
		frontier = frontier[1:]
		if visited[next] {
			continue
		}
		// Only follow peers that can hold data under the prefix.
		visit(next)
	}
	return items, route, nil
}

// RangeRetrieve returns every stored (key, value) whose key lies in the
// closed interval [lo, hi] (both at full key depth). Because the data keys
// come from the order-preserving hash, this implements value-range
// constraint searches over the overlay.
func (n *Node) RangeRetrieve(ctx context.Context, lo, hi keyspace.Key) ([]SubtreeItem, Route, error) {
	var route Route
	var items []SubtreeItem
	for _, prefix := range keyspace.CoverRange(lo, hi, lo.Len()) {
		part, r, err := n.SubtreeRetrieve(ctx, prefix)
		route.Messages += r.Messages
		route.Retries += r.Retries
		route.Contacted = append(route.Contacted, r.Contacted...)
		if err != nil {
			return items, route, err
		}
		items = append(items, part...)
	}
	return items, route, nil
}
