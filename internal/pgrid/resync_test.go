package pgrid

import (
	"context"
	"fmt"
	"testing"

	"gridvine/internal/keyspace"
)

func TestSyncFromReplicasAfterRecovery(t *testing.T) {
	net, ov := testOverlay(t, 16, 2, 61)
	issuer := ov.Nodes()[0]

	// Choose a victim replica that is not the issuer.
	key := keyspace.HashDefault("resync-probe")
	var victim *Node
	for _, n := range ov.Nodes() {
		if n.Responsible(key) && n.ID() != issuer.ID() {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Skip("no suitable victim")
	}

	// Crash the victim, then write keys that land on its leaf.
	net.Fail(victim.ID())
	var missed []keyspace.Key
	for i := 0; i < 40; i++ {
		k := keyspace.HashDefault(fmt.Sprintf("resync-%02d", i))
		if _, err := issuer.Update(context.Background(), k, i); err != nil {
			t.Fatalf("Update: %v", err)
		}
		if victim.Responsible(k) {
			missed = append(missed, k)
		}
	}
	if len(missed) == 0 {
		t.Skip("no writes landed on the victim's leaf")
	}
	for _, k := range missed {
		if got := victim.LocalGet(k); len(got) != 0 {
			t.Fatalf("victim saw write while down: %v", got)
		}
	}

	// Recover and resync: every missed item must be merged.
	net.Recover(victim.ID())
	merged, replicas := victim.SyncFromReplicas()
	if replicas == 0 {
		t.Fatal("no replicas answered the sync")
	}
	if merged < len(missed) {
		t.Errorf("merged %d < missed %d", merged, len(missed))
	}
	for _, k := range missed {
		if got := victim.LocalGet(k); len(got) != 1 {
			t.Errorf("key %s not recovered: %v", k, got)
		}
	}

	// A second sync is a no-op.
	if again, _ := victim.SyncFromReplicas(); again != 0 {
		t.Errorf("second sync merged %d items", again)
	}
}

func TestSyncFromReplicasInvokesStoreHook(t *testing.T) {
	net, ov := testOverlay(t, 8, 2, 62)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("hooked-sync")
	var victim *Node
	for _, n := range ov.Nodes() {
		if n.Responsible(key) && n.ID() != issuer.ID() {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Skip("no suitable victim")
	}
	hookCalls := 0
	victim.SetStoreHook(func(op Op, k keyspace.Key, v any) {
		if op == OpInsert {
			hookCalls++
		}
	})
	net.Fail(victim.ID())
	if _, err := issuer.Update(context.Background(), key, "v"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	net.Recover(victim.ID())
	merged, _ := victim.SyncFromReplicas()
	if merged == 0 {
		t.Skip("nothing to merge (write did not land on victim's leaf)")
	}
	if hookCalls != merged {
		t.Errorf("hook calls = %d, merged = %d", hookCalls, merged)
	}
}

func TestHandleSyncFiltersByPath(t *testing.T) {
	_, ov := testOverlay(t, 8, 2, 63)
	n := ov.Nodes()[0]
	// Store two items: one under the node's own path, one foreign (as can
	// happen transiently during bootstrap).
	own := keyspace.HashDefault("own-item")
	if !n.Path().IsPrefixOf(own) {
		// Force a matching key by using the node's path padded with zeros.
		own = n.Path()
		for own.Len() < keyspace.DefaultDepth {
			own = own.Append(0)
		}
	}
	n.localInsert(own.String(), "own")
	foreign := n.Path().Sibling()
	for foreign.Len() < keyspace.DefaultDepth {
		foreign = foreign.Append(0)
	}
	n.localInsert(foreign.String(), "foreign")

	resp := n.handleSync(SyncRequest{Path: n.Path().String()})
	for _, it := range resp.Items {
		if it.Value == "foreign" {
			t.Error("sync leaked item outside the requested path")
		}
	}
	found := false
	for _, it := range resp.Items {
		if it.Value == "own" {
			found = true
		}
	}
	if !found {
		t.Error("sync missed matching item")
	}
}
