package pgrid

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

func bootstrapOverlay(t *testing.T, peers, maxDepth int, seed int64) (*simnet.Network, *Overlay) {
	t.Helper()
	net := simnet.NewNetwork()
	ov, err := Bootstrap(net, BootstrapOptions{
		Peers:    peers,
		MaxDepth: maxDepth,
		Rng:      rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	return net, ov
}

func TestBootstrapValidation(t *testing.T) {
	net := simnet.NewNetwork()
	if _, err := Bootstrap(net, BootstrapOptions{Peers: 1, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("Bootstrap with 1 peer should fail")
	}
	if _, err := Bootstrap(net, BootstrapOptions{Peers: 8}); err == nil {
		t.Error("Bootstrap without Rng should fail")
	}
}

func TestBootstrapConvergesToCover(t *testing.T) {
	_, ov := bootstrapOverlay(t, 32, 4, 1)
	// After enough meetings, every peer should have specialized.
	for _, n := range ov.Nodes() {
		if n.Path().Len() == 0 {
			t.Errorf("peer %s still has empty path", n.ID())
		}
	}
	if err := ov.CheckCoverage(); err != nil {
		t.Errorf("coverage: %v", err)
	}
}

func TestBootstrapRoutingWorks(t *testing.T) {
	_, ov := bootstrapOverlay(t, 32, 4, 2)
	issuer := ov.Nodes()[0]
	for i := 0; i < 25; i++ {
		key := keyspace.HashDefault(fmt.Sprintf("boot-key-%d", i))
		if _, err := issuer.Update(context.Background(), key, i); err != nil {
			t.Fatalf("Update key %d: %v", i, err)
		}
		values, _, err := ov.Nodes()[i%len(ov.Nodes())].Retrieve(context.Background(), key)
		if err != nil {
			t.Fatalf("Retrieve key %d: %v", i, err)
		}
		if len(values) != 1 {
			t.Errorf("key %d: values = %v", i, values)
		}
	}
}

func TestBootstrapFormsReplicas(t *testing.T) {
	// 32 peers at max depth 3 → 8 leaves → ~4 peers per leaf: replica sets
	// must form.
	_, ov := bootstrapOverlay(t, 32, 3, 3)
	withReplicas := 0
	for _, n := range ov.Nodes() {
		if len(n.Replicas()) > 0 {
			withReplicas++
		}
	}
	if withReplicas < len(ov.Nodes())/2 {
		t.Errorf("only %d/%d peers formed replica links", withReplicas, len(ov.Nodes()))
	}
}

func TestBootstrapDataMigratesOnSplit(t *testing.T) {
	// Insert data into peers before construction, then bootstrap: items must
	// end up on peers whose path matches their key.
	net := simnet.NewNetwork()
	rng := rand.New(rand.NewSource(4))
	ov := &Overlay{byID: make(map[simnet.PeerID]*Node), byPath: make(map[string][]*Node)}
	for i := 0; i < 16; i++ {
		id := simnet.PeerID(fmt.Sprintf("peer-%03d", i))
		node := NewNode(id, keyspace.Key{}, net, Config{Seed: rng.Int63()})
		ov.nodes = append(ov.nodes, node)
		ov.byID[id] = node
		net.Register(id, node)
	}
	// Pre-load items on random peers (every peer is responsible while paths
	// are empty).
	for i := 0; i < 40; i++ {
		key := keyspace.HashDefault(fmt.Sprintf("pre-%d", i))
		ov.nodes[rng.Intn(len(ov.nodes))].localInsert(key.String(), i)
	}
	for m := 0; m < 16*80; m++ {
		a := ov.nodes[rng.Intn(len(ov.nodes))]
		b := ov.nodes[rng.Intn(len(ov.nodes))]
		if a != b {
			meet(a, b, 3)
		}
	}
	ov.reindexPaths()
	if err := ov.CheckCoverage(); err != nil {
		t.Fatalf("coverage: %v", err)
	}
	// Every stored item must now be on a peer whose path prefixes its key.
	misplaced := 0
	for _, n := range ov.Nodes() {
		for _, k := range n.LocalKeys() {
			key := keyspace.MustParseKey(k)
			if !n.Path().IsPrefixOf(key) {
				misplaced++
			}
		}
	}
	if misplaced > 0 {
		t.Errorf("%d items misplaced after bootstrap", misplaced)
	}
}

func TestBootstrapUnevenPeerCount(t *testing.T) {
	_, ov := bootstrapOverlay(t, 25, 3, 5)
	if err := ov.CheckCoverage(); err != nil {
		t.Errorf("coverage: %v", err)
	}
}

func TestJoinAfterBuild(t *testing.T) {
	net, ov := testOverlay(t, 16, 2, 6)
	rng := rand.New(rand.NewSource(7))
	before := len(ov.Nodes())
	node, err := ov.Join(net, "joiner-1", ov.Nodes()[3], 8, Config{}, rng)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if len(ov.Nodes()) != before+1 {
		t.Errorf("nodes = %d", len(ov.Nodes()))
	}
	if node.Path().Len() == 0 {
		t.Error("joiner did not specialize")
	}
	// The overlay must remain routable from the new node.
	key := keyspace.HashDefault("post-join")
	if _, err := node.Update(context.Background(), key, "v"); err != nil {
		t.Fatalf("Update from joiner: %v", err)
	}
	values, _, err := ov.Nodes()[0].Retrieve(context.Background(), key)
	if err != nil || len(values) != 1 {
		t.Errorf("Retrieve after join: %v %v", values, err)
	}
}

func TestJoinDuplicateIDRejected(t *testing.T) {
	net, ov := testOverlay(t, 8, 2, 8)
	rng := rand.New(rand.NewSource(9))
	if _, err := ov.Join(net, ov.Nodes()[0].ID(), ov.Nodes()[1], 8, Config{}, rng); err == nil {
		t.Error("duplicate join should fail")
	}
}

func TestChurnRetrievalWithReplicas(t *testing.T) {
	// With replica factor 3, killing one random peer per leaf must not lose
	// data.
	net, ov := testOverlay(t, 30, 3, 10)
	issuer := ov.Nodes()[0]
	keysToCheck := make([]keyspace.Key, 0, 20)
	for i := 0; i < 20; i++ {
		k := keyspace.HashDefault(fmt.Sprintf("churn-%d", i))
		if _, err := issuer.Update(context.Background(), k, i); err != nil {
			t.Fatalf("Update: %v", err)
		}
		keysToCheck = append(keysToCheck, k)
	}
	rng := rand.New(rand.NewSource(11))
	// Kill ~1/3 of peers, never the issuer.
	for _, n := range ov.Nodes() {
		if n.ID() != issuer.ID() && rng.Float64() < 0.33 {
			net.Fail(n.ID())
		}
	}
	lost := 0
	for _, k := range keysToCheck {
		values, _, err := issuer.Retrieve(context.Background(), k)
		if err != nil || len(values) != 1 {
			lost++
		}
	}
	// Some loss is possible if all replicas of one leaf die; with factor 3
	// and p=0.33 the expected loss is ~3.6% of leaves. Allow a small number.
	if lost > 4 {
		t.Errorf("lost %d/20 keys under churn", lost)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for in, want := range cases {
		if got := log2ceil(in); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", in, got, want)
		}
	}
}
