package pgrid

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// ErrNoRoute reports that routing could not reach a live responsible peer.
var ErrNoRoute = errors.New("pgrid: no route to responsible peer")

// ErrRetryBudget reports that a rerouting round was abandoned before it
// started because the context's remaining deadline budget is smaller than
// the node's observed per-hop latency — the retry was doomed to burn the
// rest of the deadline without completing. Distinguishable from both a
// routing dead-end (ErrNoRoute) and an actually expired context
// (context.DeadlineExceeded), so callers can fail fast and, e.g., redirect
// the remaining budget to work already in flight.
var ErrRetryBudget = errors.New("pgrid: deadline budget below observed per-hop latency, abandoning retry")

// Route describes how one overlay operation was resolved; the experiment
// harness feeds Contacted into the discrete-event replay and counts Messages
// for the O(log |Π|) routing-cost experiment.
type Route struct {
	// Contacted lists, in order, the remote peers the issuer exchanged a
	// request/response with (iterative mode) or that forwarded the request
	// (recursive mode). The final entry is the peer that answered.
	Contacted []simnet.PeerID
	// Messages is the number of transport sends attributed to the operation
	// as observed by the issuer (request+response counted once), excluding
	// server-side replication traffic.
	Messages int
	// Retries counts rerouting rounds forced by unreachable peers.
	Retries int
	// Degraded reports that the operation succeeded only by routing around
	// unreachable peers (excluded hops or retry rounds): the answer came
	// from a live replica rather than the first-choice responsible peer, so
	// under churn it may trail the newest writes by one anti-entropy round.
	Degraded bool
}

// Hops returns the number of peers contacted.
func (r Route) Hops() int { return len(r.Contacted) }

// Every routed operation takes a context: routing checks it between hops
// (and the transport checks it in transit), so cancelling the context or
// letting its deadline expire abandons the operation mid-route with
// ctx.Err(). Callers that do not need cancellation pass
// context.Background().

// Retrieve resolves key to its responsible peer and returns the values
// stored there (paper §2.1: Retrieve(key)).
func (n *Node) Retrieve(ctx context.Context, key keyspace.Key) ([]any, Route, error) {
	resp, route, err := n.execute(ctx, ExecRequest{Key: key.String(), Op: OpGet})
	if err != nil {
		return nil, route, err
	}
	return resp.Values, route, nil
}

// Update inserts value at the peer responsible for key (paper §2.1:
// Update(key, value)); the responsible peer synchronizes its replicas.
func (n *Node) Update(ctx context.Context, key keyspace.Key, value any) (Route, error) {
	_, route, err := n.execute(ctx, ExecRequest{Key: key.String(), Op: OpInsert, Value: value})
	return route, err
}

// Delete removes value at the peer responsible for key.
func (n *Node) Delete(ctx context.Context, key keyspace.Key, value any) (Route, error) {
	_, route, err := n.execute(ctx, ExecRequest{Key: key.String(), Op: OpDelete, Value: value})
	return route, err
}

// Replace atomically substitutes value for every stored value it Replaces
// at the peer responsible for key (see Replacer): one routed operation, one
// replica synchronization message per replica. A value that implements no
// Replacer is simply inserted.
func (n *Node) Replace(ctx context.Context, key keyspace.Key, value any) (Route, error) {
	_, route, err := n.execute(ctx, ExecRequest{Key: key.String(), Op: OpReplace, Value: value})
	return route, err
}

// Query ships payload to the peer responsible for key and runs the
// registered application handler there — GridVine's Retrieve(key, q).
func (n *Node) Query(ctx context.Context, key keyspace.Key, payload any) (any, Route, error) {
	resp, route, err := n.execute(ctx, ExecRequest{Key: key.String(), Op: OpQuery, Payload: payload})
	if err != nil {
		return nil, route, err
	}
	return resp.AppResult, route, nil
}

// QueryRecursive is Query with server-side forwarding: intermediate peers
// relay the request toward the responsible peer instead of answering the
// issuer with references. TTL bounds the chain length.
func (n *Node) QueryRecursive(key keyspace.Key, payload any, ttl int) (any, Route, error) {
	req := ExecRequest{Key: key.String(), Op: OpQuery, Payload: payload, Recursive: true, TTL: ttl}
	var route Route
	resp, err := n.handleExec(req)
	if err != nil {
		return nil, route, err
	}
	// Chain starts with this node; each subsequent link cost one send (the
	// response rides back on the same exchange).
	if len(resp.Chain) > 1 {
		route.Contacted = resp.Chain[1:]
		route.Messages = len(resp.Chain) - 1
	}
	if !resp.Responsible {
		return nil, route, fmt.Errorf("%w: recursive TTL exhausted for %s", ErrNoRoute, key)
	}
	return resp.AppResult, route, nil
}

// execute drives iterative routing for a request: the issuer repeatedly
// sends the request to the best-known peer; a non-responsible receiver
// answers with closer references, the responsible receiver answers with the
// result. Failed peers are excluded and routing restarts up to MaxRetries
// times (replicas of a failed leaf are reached through sibling references).
// A cancelled or deadline-expired ctx aborts between hops with ctx.Err().
func (n *Node) execute(ctx context.Context, req ExecRequest) (ExecResponse, Route, error) {
	key, err := keyspace.ParseKey(req.Key)
	if err != nil {
		return ExecResponse{}, Route{}, err
	}
	var route Route
	exclude := map[simnet.PeerID]bool{}

	for attempt := 0; attempt <= n.cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return ExecResponse{}, route, err
		}
		if attempt > 0 {
			// Deadline-aware rerouting: a retry round costs at least one more
			// hop, so when the remaining budget cannot cover the observed
			// per-hop latency, fail fast instead of burning the deadline on a
			// doomed pass.
			if err := n.retryBudget(ctx); err != nil {
				return ExecResponse{}, route, err
			}
			route.Retries++
			// Jittered backoff before re-routing: a dead responsible peer's
			// replicas need a beat to show up as the best candidates, and
			// synchronized retry storms from many issuers would hammer the
			// same survivors. Stays inside the retryBudget discipline — the
			// sleep is an order of magnitude below any observable hop.
			if err := n.retryBackoff(ctx, attempt); err != nil {
				return ExecResponse{}, route, err
			}
		}
		resp, ok, err := n.routeOnce(ctx, key, req, exclude, &route)
		if err != nil {
			return ExecResponse{}, route, err
		}
		if ok {
			route.Degraded = len(exclude) > 0 || route.Retries > 0
			return resp, route, nil
		}
	}
	return ExecResponse{}, route, fmt.Errorf("%w: %s (op %s)", ErrNoRoute, req.Key, req.Op)
}

// retryBackoff sleeps an exponentially growing, jittered interval before a
// rerouting round (base 100µs, doubling per attempt, ±50% jitter), honouring
// ctx cancellation. Kept deliberately small: it decorrelates concurrent
// issuers retrying against the same survivors without threatening the
// deadline budget retryBudget already vetted.
func (n *Node) retryBackoff(ctx context.Context, attempt int) error {
	base := 100 * time.Microsecond << (attempt - 1)
	n.rngMu.Lock()
	d := base/2 + time.Duration(n.rng.Int63n(int64(base)))
	n.rngMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// routeOnce performs one iterative routing pass. It returns ok=false when it
// dead-ends (no live references); newly discovered dead peers are added to
// exclude so the next pass avoids them. A non-nil error is terminal —
// cancellation, never a dead peer.
func (n *Node) routeOnce(ctx context.Context, key keyspace.Key, req ExecRequest, exclude map[simnet.PeerID]bool, route *Route) (ExecResponse, bool, error) {
	// Local fast path.
	if responsible, _ := n.nextHopInfo(key); responsible {
		resp, err := n.handleExec(req)
		if err != nil {
			return ExecResponse{}, false, nil
		}
		return resp, true, nil
	}

	candidates := n.candidateHops(key, exclude)
	visited := map[simnet.PeerID]bool{n.id: true}

	for len(candidates) > 0 {
		if err := ctx.Err(); err != nil {
			return ExecResponse{}, false, err
		}
		next := candidates[0]
		candidates = candidates[1:]
		if visited[next] || exclude[next] {
			continue
		}
		visited[next] = true

		route.Messages++
		sendStart := time.Now()
		msg, err := n.net.Send(ctx, n.id, next, simnet.Message{Type: msgExec, Payload: req})
		if err == nil {
			n.observeHopLatency(time.Since(sendStart))
		}
		if err != nil {
			// Cancellation is not a dead peer: abort instead of rerouting.
			if cerr := ctx.Err(); cerr != nil {
				return ExecResponse{}, false, cerr
			}
			n.markSuspect(next)
			exclude[next] = true
			continue
		}
		n.clearSuspect(next)
		route.Contacted = append(route.Contacted, next)
		resp, ok := msg.Payload.(ExecResponse)
		if !ok {
			return ExecResponse{}, false, nil
		}
		if resp.Responsible {
			return resp, true, nil
		}
		// Prepend the receiver's references: they are strictly closer.
		closer := make([]simnet.PeerID, 0, len(resp.NextHops)+len(candidates))
		for _, h := range resp.NextHops {
			if !visited[h] && !exclude[h] {
				closer = append(closer, h)
			}
		}
		candidates = append(closer, candidates...)
	}
	return ExecResponse{}, false, nil
}

// observeHopLatency folds one successful request/response round-trip into
// the node's per-hop latency floor: the minimum observed round-trip. The
// floor is deliberately conservative — individual round-trips include
// server-side work and payload transfer, so averaging them would let one
// large-answer exchange inflate the estimate and spuriously abort
// affordable retries; the minimum tracks what the cheapest possible next
// hop costs.
func (n *Node) observeHopLatency(d time.Duration) {
	if d <= 0 {
		return
	}
	n.latMu.Lock()
	if n.hopLat == 0 || d < n.hopLat {
		n.hopLat = d
	}
	n.latMu.Unlock()
}

// HopLatencyEstimate returns the node's per-hop latency floor (zero until
// a hop has been observed): the minimum request/response round-trip seen.
func (n *Node) HopLatencyEstimate() time.Duration {
	n.latMu.Lock()
	defer n.latMu.Unlock()
	return n.hopLat
}

// retryBudget reports ErrRetryBudget when ctx carries a deadline whose
// remaining budget is below the observed per-hop latency. Without a
// deadline, or before any hop has been measured, retries proceed.
func (n *Node) retryBudget(ctx context.Context) error {
	deadline, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	est := n.HopLatencyEstimate()
	if est == 0 {
		return nil
	}
	if remaining := time.Until(deadline); remaining < est {
		return fmt.Errorf("%w (%v left, ~%v/hop)", ErrRetryBudget, remaining.Round(time.Microsecond), est.Round(time.Microsecond))
	}
	return nil
}

// candidateHops returns this node's references ordered best-first for key:
// deepest matching level first, shuffled within a level for load spreading.
// Suspected peers sort behind trusted ones at every position — they are not
// excluded (suspicion is a guess and the peer may have recovered), but a
// lookup only pays a round-trip to one after the live candidates dead-end.
func (n *Node) candidateHops(key keyspace.Key, exclude map[simnet.PeerID]bool) []simnet.PeerID {
	n.mu.RLock()
	level := n.path.CommonPrefixLen(key)
	refs := make([]simnet.PeerID, 0, len(n.refs[level]))
	for _, p := range n.refs[level] {
		if !exclude[p] {
			refs = append(refs, p)
		}
	}
	// Fallback: shallower levels (useful when the exact level is empty after
	// failures — any peer on the other side of an earlier bit can still make
	// progress, just more slowly).
	var fallback []simnet.PeerID
	for l := level - 1; l >= 0; l-- {
		for _, p := range n.refs[l] {
			if !exclude[p] {
				fallback = append(fallback, p)
			}
		}
	}
	n.mu.RUnlock()
	n.rngMu.Lock()
	n.rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
	n.rngMu.Unlock()
	all := append(refs, fallback...)
	trusted := make([]simnet.PeerID, 0, len(all))
	var suspected []simnet.PeerID
	for _, p := range all {
		if n.Suspected(p) {
			suspected = append(suspected, p)
		} else {
			trusted = append(trusted, p)
		}
	}
	return append(trusted, suspected...)
}

// handleExec processes an ExecRequest at this node.
func (n *Node) handleExec(req ExecRequest) (ExecResponse, error) {
	key, err := keyspace.ParseKey(req.Key)
	if err != nil {
		return ExecResponse{}, err
	}
	responsible, hops := n.nextHopInfo(key)
	if !responsible {
		if req.Recursive {
			return n.forwardRecursive(key, req, hops)
		}
		return ExecResponse{NextHops: hops}, nil
	}

	resp := ExecResponse{Responsible: true, Chain: []simnet.PeerID{n.id}, Path: n.Path().String()}
	switch req.Op {
	case OpGet:
		resp.Values = n.LocalGet(key)
	case OpProbe:
		// The response's Path is the answer. A probe piggybacking the head
		// entry of a batched write additionally applies (and replicates) it
		// on the spot, so a single-entry run costs exactly one routed
		// operation — the same as the historical per-key Update.
		if e, ok := req.Payload.(BatchEntry); ok {
			resp.AppResult = BatchResult{Applied: n.applyBatch([]BatchEntry{e}, true)}
		}
	case OpInsert, OpDelete, OpReplace:
		n.applyMutation(req.Key, req.Op, req.Value)
		n.replicate(ReplicateRequest{Key: req.Key, Op: req.Op, Value: req.Value})
	case OpQuery:
		n.mu.RLock()
		h := n.handler
		n.mu.RUnlock()
		if h == nil {
			return ExecResponse{}, fmt.Errorf("pgrid: node %s has no query handler", n.id)
		}
		result, err := h(key, req.Payload)
		if err != nil {
			return ExecResponse{}, err
		}
		resp.AppResult = result
	default:
		return ExecResponse{}, fmt.Errorf("pgrid: unknown op %v", req.Op)
	}
	return resp, nil
}

// forwardRecursive relays the request to one live closer peer and funnels
// its answer back, recording the chain.
func (n *Node) forwardRecursive(key keyspace.Key, req ExecRequest, hops []simnet.PeerID) (ExecResponse, error) {
	if req.TTL <= 0 {
		return ExecResponse{Chain: []simnet.PeerID{n.id}}, nil
	}
	req.TTL--
	for _, h := range hops {
		// Server-side forwarding has no issuer context to honour.
		//gridvine:serverctx recursive forwarding runs on the remote node; the issuer's context ended at the first hop and TTL bounds the work
		msg, err := n.net.Send(context.Background(), n.id, h, simnet.Message{Type: msgExec, Payload: req})
		if err != nil {
			continue
		}
		resp, ok := msg.Payload.(ExecResponse)
		if !ok {
			continue
		}
		resp.Chain = append([]simnet.PeerID{n.id}, resp.Chain...)
		return resp, nil
	}
	return ExecResponse{Chain: []simnet.PeerID{n.id}}, nil
}

// replicate pushes a mutation to the node's replicas σ(p), best-effort. A
// failed push is tolerated but observed: the replica becomes suspected and
// the key is enqueued on its repair hot-list, so the next anti-entropy
// round re-ships exactly the lost mutations instead of rescanning the
// whole store.
func (n *Node) replicate(req ReplicateRequest) {
	for _, r := range n.Replicas() {
		// Replication always completes regardless of the issuer's context —
		// a cancelled query must never leave replicas diverged.
		//gridvine:serverctx replication must complete even if the issuing mutation's context is cancelled, or replicas diverge
		if _, err := n.net.Send(context.Background(), n.id, r, simnet.Message{Type: msgReplicate, Payload: req}); err != nil {
			n.noteReplicaFailure(r, req.Key)
		} else {
			n.clearSuspect(r)
		}
	}
}
