package pgrid

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// The batched write path. A bulk mutation over the overlay costs, naively,
// one routed operation per (key, value) pair — O(log |Π|) messages each,
// every one carrying its value across every hop. WriteBatch collapses that:
// entries are sorted by key, so (the hash being order-preserving and
// responsibility a path prefix) the keys one leaf covers form a contiguous
// run; a routed OpProbe carrying only the run's head entry resolves the
// responsible peer and its path while applying the head on arrival, and the
// rest of the run then ships as ONE BatchUpdate message directly to that
// peer, which applies it under one lock pass and synchronizes each replica
// with one message. Routed message count collapses from the number of
// entries toward the number of distinct responsible peers — and a run of
// one (the deprecated per-entry write methods) costs exactly the one routed
// operation it always did.

// BatchStatus is the terminal state of one WriteBatch entry.
type BatchStatus int8

// Entry states: Skipped entries were never attempted (the context fired
// first), Applied entries reached their responsible peer, Failed entries
// could not be routed or delivered.
const (
	BatchSkipped BatchStatus = iota
	BatchApplied
	BatchFailed
)

func (s BatchStatus) String() string {
	switch s {
	case BatchApplied:
		return "applied"
	case BatchFailed:
		return "failed"
	default:
		return "skipped"
	}
}

// BatchOutcome reports how a WriteBatch resolved.
type BatchOutcome struct {
	// Statuses and Errs align with the input entries (Errs non-nil only for
	// failed entries).
	Statuses []BatchStatus
	Errs     []error
	// Groups counts the BatchUpdate messages shipped (plus locally applied
	// runs) — the "distinct responsible peers" the batch collapsed to.
	Groups int
	// Route aggregates the issuer-observed message cost: probe routing plus
	// one message per shipped group.
	Route Route
}

// Applied counts entries that reached their responsible peer.
func (o *BatchOutcome) Applied() int { return o.count(BatchApplied) }

// Failed counts entries that could not be routed or delivered.
func (o *BatchOutcome) Failed() int { return o.count(BatchFailed) }

// Skipped counts entries never attempted (cancellation).
func (o *BatchOutcome) Skipped() int { return o.count(BatchSkipped) }

func (o *BatchOutcome) count(s BatchStatus) int {
	n := 0
	for _, st := range o.Statuses {
		if st == s {
			n++
		}
	}
	return n
}

// WriteBatch applies a set of keyed mutations across the overlay with
// key-grouped shipping (see the package notes above). Entries need not be
// pre-sorted; same-key entries are applied in slice order. The returned
// error is terminal — cancellation, an expired deadline, or an abandoned
// retry budget — and leaves the not-yet-attempted entries BatchSkipped in
// the outcome; per-destination routing failures are recorded per entry
// (BatchFailed) and do not stop the rest of the batch.
func (n *Node) WriteBatch(ctx context.Context, entries []BatchEntry) (*BatchOutcome, error) {
	out := &BatchOutcome{
		Statuses: make([]BatchStatus, len(entries)),
		Errs:     make([]error, len(entries)),
	}
	if len(entries) == 0 {
		return out, nil
	}

	// Sort (stably) by key: one leaf's keys are contiguous under the
	// order-preserving hash, and same-key mutations keep submission order.
	remaining := make([]int, len(entries))
	for i := range remaining {
		remaining[i] = i
	}
	sort.SliceStable(remaining, func(a, b int) bool {
		return entries[remaining[a]].Key < entries[remaining[b]].Key
	})

	failHead := func(err error) {
		out.Statuses[remaining[0]] = BatchFailed
		out.Errs[remaining[0]] = err
		remaining = remaining[1:]
	}
	// declines counts, per entry, responsible-peer declines (a concurrent
	// path split between the routing check and the locked apply): declined
	// heads re-probe — the next round routes to the new responsible peer —
	// bounded by MaxRetries so a pathological loop still terminates.
	declines := map[int]int{}

	for len(remaining) > 0 {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		head := entries[remaining[0]]
		headKey, err := keyspace.ParseKey(head.Key)
		if err != nil {
			failHead(err)
			continue
		}

		// Resolve the run's responsible peer (and its path) with a routed
		// probe that carries — and applies — the head entry, so a run of one
		// costs exactly one routed operation, like the historical per-key
		// Update.
		resp, route, err := n.execute(ctx, ExecRequest{Key: head.Key, Op: OpProbe, Payload: head})
		accumulateRoute(&out.Route, route)
		if err != nil {
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			if errors.Is(err, ErrRetryBudget) {
				return out, err
			}
			failHead(err)
			continue
		}
		out.Groups++
		if result, ok := resp.AppResult.(BatchResult); !ok || len(result.Applied) != 1 {
			// The answering peer passed the routing responsibility check but
			// declined the head under its store lock — its path split
			// beneath us. Re-probe (bounded), then fail for progress.
			declines[remaining[0]]++
			if declines[remaining[0]] > n.cfg.MaxRetries {
				failHead(fmt.Errorf("pgrid: responsible peer did not apply the head entry for %s", head.Key))
			}
			continue
		}
		out.Statuses[remaining[0]] = BatchApplied
		path, perr := keyspace.ParseKey(resp.Path)
		if perr != nil || !path.IsPrefixOf(headKey) {
			// The head applied but the path is unusable for run extension;
			// fall back to per-head progress.
			remaining = remaining[1:]
			continue
		}

		// The rest of the run: the maximal sorted prefix of the remaining
		// keys (beyond the head) under the responsible peer's path.
		runLen := 1
		for runLen < len(remaining) {
			k, err := keyspace.ParseKey(entries[remaining[runLen]].Key)
			if err != nil || !path.IsPrefixOf(k) {
				break
			}
			runLen++
		}
		rest := remaining[1:runLen]
		if len(rest) == 0 {
			remaining = remaining[1:]
			continue
		}
		group := make([]BatchEntry, len(rest))
		for i, idx := range rest {
			group[i] = entries[idx]
		}

		// Ship the rest of the run in one message (or apply locally when
		// this node answered its own probe).
		var applied []int
		if len(route.Contacted) == 0 {
			applied = n.applyBatch(group, true)
		} else {
			dest := route.Contacted[len(route.Contacted)-1]
			out.Route.Messages++
			msg, err := n.net.Send(ctx, n.id, dest, simnet.Message{Type: msgBatch, Payload: BatchUpdate{Entries: group}})
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return out, cerr
				}
				// The peer died between probe and delivery: the head stands,
				// the rest re-routes (a replica answers the next probe).
				remaining = remaining[1:]
				continue
			}
			out.Route.Contacted = append(out.Route.Contacted, dest)
			result, ok := msg.Payload.(BatchResult)
			if !ok {
				remaining = remaining[1:]
				continue
			}
			applied = result.Applied
		}

		appliedSet := make(map[int]bool, len(applied))
		for _, i := range applied {
			if i >= 0 && i < len(rest) {
				out.Statuses[rest[i]] = BatchApplied
				appliedSet[i] = true
			}
		}
		// Entries of the run the peer declined (its path moved under us) go
		// back on the queue, preserving order. The head always applied, so
		// progress is guaranteed.
		kept := remaining[:0]
		for i := 0; i < len(rest); i++ {
			if !appliedSet[i] {
				kept = append(kept, rest[i])
			}
		}
		remaining = append(kept, remaining[runLen:]...)
	}
	return out, nil
}

func accumulateRoute(total *Route, r Route) {
	total.Contacted = append(total.Contacted, r.Contacted...)
	total.Messages += r.Messages
	total.Retries += r.Retries
}
