package pgrid

import (
	"context"
	"fmt"
	"testing"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// replicaGroups partitions an overlay's nodes by leaf path.
func replicaGroups(ov *Overlay) map[string][]*Node {
	groups := map[string][]*Node{}
	for _, n := range ov.Nodes() {
		p := n.Path().String()
		groups[p] = append(groups[p], n)
	}
	return groups
}

// assertConverged checks every replica group holds a byte-identical store.
func assertConverged(t *testing.T, ov *Overlay) {
	t.Helper()
	for path, group := range replicaGroups(ov) {
		want := group[0].ContentDigest()
		for _, n := range group[1:] {
			if got := n.ContentDigest(); got != want {
				t.Errorf("replica group %s diverged: %s=%x %s=%x (sizes %d vs %d)",
					path, group[0].ID(), want, n.ID(), got, group[0].StoreSize(), n.StoreSize())
			}
		}
	}
}

func TestDeleteNotResurrectedBySync(t *testing.T) {
	// Regression for the delete-resurrection bug: a replica that misses a
	// delete while crashed must reconcile the delete on resync, not push
	// the stale value back.
	net, ov := testOverlay(t, 16, 2, 61)
	issuer := ov.Nodes()[0]

	key := keyspace.HashDefault("tombstone-probe")
	if _, err := issuer.Update(context.Background(), key, "doomed"); err != nil {
		t.Fatalf("Update: %v", err)
	}

	var group []*Node
	for _, n := range ov.Nodes() {
		if n.Responsible(key) {
			group = append(group, n)
		}
	}
	if len(group) < 2 {
		t.Skip("replica group too small")
	}
	victim := group[0]
	if victim.ID() == issuer.ID() {
		victim = group[1]
	}
	if len(victim.LocalGet(key)) != 1 {
		t.Fatal("victim did not receive the replicated insert")
	}

	// Victim crashes; the delete happens without it.
	net.Fail(victim.ID())
	if _, err := issuer.Delete(context.Background(), key, "doomed"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	net.Recover(victim.ID())
	if got := victim.LocalGet(key); len(got) != 1 {
		t.Fatalf("victim should still hold the stale value, got %v", got)
	}

	// Digest-based resync must apply the tombstone, not resurrect the value.
	victim.SyncFromReplicas()
	if got := victim.LocalGet(key); len(got) != 0 {
		t.Errorf("digest resync resurrected deleted value: %v", got)
	}

	// And the victim's stale copy must not leak back into the survivors.
	for _, n := range group {
		if n == victim {
			continue
		}
		if got := n.LocalGet(key); len(got) != 0 {
			t.Errorf("survivor %s re-acquired deleted value: %v", n.ID(), got)
		}
	}
}

func TestDeleteNotResurrectedByFullSync(t *testing.T) {
	// The full-store baseline ships tombstones too, so it must reconcile
	// deletes as well — the digest path only changes the cost.
	net, ov := testOverlay(t, 16, 2, 29)
	issuer := ov.Nodes()[0]

	key := keyspace.HashDefault("fullsync-tombstone")
	if _, err := issuer.Update(context.Background(), key, "doomed"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	var victim *Node
	for _, n := range ov.Nodes() {
		if n.Responsible(key) && n.ID() != issuer.ID() {
			victim = n
			break
		}
	}
	if victim == nil || len(victim.LocalGet(key)) != 1 {
		t.Skip("no replicated victim")
	}
	net.Fail(victim.ID())
	if _, err := issuer.Delete(context.Background(), key, "doomed"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	net.Recover(victim.ID())
	victim.FullSyncFromReplicas()
	if got := victim.LocalGet(key); len(got) != 0 {
		t.Errorf("full-store resync resurrected deleted value: %v", got)
	}
}

func TestReinsertAfterDeleteSurvivesSync(t *testing.T) {
	// A fresh insert of a previously deleted value clears the tombstone:
	// the value must survive subsequent anti-entropy rounds.
	_, ov := testOverlay(t, 8, 2, 17)
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("reinsert-probe")
	ctx := context.Background()

	if _, err := issuer.Update(ctx, key, "phoenix"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if _, err := issuer.Delete(ctx, key, "phoenix"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := issuer.Update(ctx, key, "phoenix"); err != nil {
		t.Fatalf("re-Update: %v", err)
	}
	for _, n := range ov.Nodes() {
		n.AntiEntropy(ctx)
	}
	for _, n := range ov.Nodes() {
		if !n.Responsible(key) {
			continue
		}
		if got := n.LocalGet(key); len(got) != 1 {
			t.Errorf("node %s lost re-inserted value after anti-entropy: %v", n.ID(), got)
		}
	}
	assertConverged(t, ov)
}

func TestAntiEntropyConvergesAfterCrash(t *testing.T) {
	net, ov := testOverlay(t, 24, 3, 7)
	issuer := ov.Nodes()[0]
	ctx := context.Background()

	victim := ov.Nodes()[5]
	net.Fail(victim.ID())
	for i := 0; i < 60; i++ {
		k := keyspace.HashDefault(fmt.Sprintf("ae-%02d", i))
		if _, err := issuer.Update(ctx, k, i); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	// A few deletes the victim also misses.
	for i := 0; i < 10; i++ {
		k := keyspace.HashDefault(fmt.Sprintf("ae-%02d", i))
		if _, err := issuer.Delete(ctx, k, i); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	net.Recover(victim.ID())

	stats := victim.AntiEntropy(ctx)
	if stats.Replicas == 0 {
		t.Fatal("no replicas answered the digest exchange")
	}
	assertConverged(t, ov)

	// Second round: stores agree, so the exchange is digest-only (one
	// message per replica, nothing shipped).
	again := victim.AntiEntropy(ctx)
	if again.Pulled != 0 || again.Pushed != 0 || again.TombsPulled != 0 || again.TombsPushed != 0 {
		t.Errorf("second anti-entropy round shipped data: %+v", again)
	}
	if again.Messages != again.Replicas {
		t.Errorf("converged exchange cost %d messages for %d replicas, want digest-only", again.Messages, again.Replicas)
	}
}

func TestReplicaFailureFeedsHotList(t *testing.T) {
	net, ov := testOverlay(t, 16, 3, 3)
	issuer := ov.Nodes()[0]
	ctx := context.Background()

	key := keyspace.HashDefault("hotlist-probe")
	var group []*Node
	for _, n := range ov.Nodes() {
		if n.Responsible(key) {
			group = append(group, n)
		}
	}
	if len(group) < 2 {
		t.Skip("no replicated owner")
	}
	dead := group[0].ID()
	if dead == issuer.ID() {
		dead = group[1].ID()
	}
	net.Fail(dead)

	if _, err := issuer.Update(ctx, key, "hot"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// The routed write landed on some live group member, whose push to the
	// dead replica failed: exactly that member carries the suspicion and
	// the repair backlog.
	var owner *Node
	for _, n := range group {
		if n.ID() != dead && n.RepairBacklog() > 0 {
			owner = n
			break
		}
	}
	if owner == nil {
		t.Fatal("failed replica push did not enqueue any key for targeted repair")
	}
	if !owner.Suspected(dead) {
		t.Error("failed replica push should mark the replica suspected")
	}

	net.Recover(dead)
	stats := owner.AntiEntropy(ctx)
	if stats.HotPushed == 0 {
		t.Errorf("anti-entropy did not run targeted repair: %+v", stats)
	}
	if owner.RepairBacklog() != 0 {
		t.Errorf("repair backlog not drained: %d", owner.RepairBacklog())
	}
	if owner.Suspected(dead) {
		t.Error("successful exchange should clear suspicion")
	}
	var deadNode *Node
	for _, n := range ov.Nodes() {
		if n.ID() == dead {
			deadNode = n
			break
		}
	}
	if got := deadNode.LocalGet(key); len(got) != 1 {
		t.Errorf("targeted repair did not deliver the value: %v", got)
	}
}

func TestSuspectedPeersOrderedLast(t *testing.T) {
	_, ov := testOverlay(t, 16, 2, 11)
	n := ov.Nodes()[0]
	key := keyspace.HashDefault("suspect-order")
	cands := n.candidateHops(key, map[simnet.PeerID]bool{})
	if len(cands) < 2 {
		t.Skip("not enough candidates")
	}
	n.markSuspect(cands[0])
	reordered := n.candidateHops(key, map[simnet.PeerID]bool{})
	if reordered[len(reordered)-1] != cands[0] {
		t.Errorf("suspected peer %s not ordered last: %v", cands[0], reordered)
	}
	n.clearSuspect(cands[0])
}

func TestTombstoneCapPrunes(t *testing.T) {
	net := simnet.NewNetwork()
	n := NewNode("solo", keyspace.Key{}, net, Config{TombstoneCap: 8})
	for i := 0; i < 40; i++ {
		n.localDelete(fmt.Sprintf("k%02d", i), i)
	}
	if got := n.TombstoneCount(); got > 8 {
		t.Errorf("tombstones = %d, want ≤ cap 8", got)
	}
}

func TestDegradedRouteFlag(t *testing.T) {
	net, ov := testOverlay(t, 24, 3, 5)
	issuer := ov.Nodes()[0]
	ctx := context.Background()

	key := keyspace.HashDefault("degraded-probe")
	if _, err := issuer.Update(ctx, key, "v"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	vals, route, err := issuer.Retrieve(ctx, key)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if route.Degraded {
		t.Error("healthy retrieve reported degraded")
	}
	if len(vals) != 1 {
		t.Fatalf("retrieve = %v", vals)
	}

	// Kill the first-choice responsible peer; a replica must answer and
	// the route must say the answer was degraded.
	var killed bool
	for _, n := range ov.Nodes() {
		if n.Responsible(key) && n.ID() != issuer.ID() {
			net.Fail(n.ID())
			killed = true
			break
		}
	}
	if !killed {
		t.Skip("issuer owns the key")
	}
	found := false
	for i := 0; i < 8; i++ {
		vals, route, err = issuer.Retrieve(ctx, key)
		if err == nil && route.Degraded {
			found = true
			break
		}
	}
	if !found {
		t.Skip("routing never hit the dead peer (shuffle avoided it)")
	}
	if len(vals) != 1 {
		t.Errorf("degraded retrieve lost the value: %v", vals)
	}
}
