package pgrid

import (
	"context"
	"encoding/gob"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

const msgSync = "pgrid.sync"

// SyncRequest asks a replica for its full store content under the
// requesting peer's path (anti-entropy after a crash/recovery).
type SyncRequest struct {
	Path string
}

// SyncResponse carries the replica's matching items.
type SyncResponse struct {
	Items []SubtreeItem
}

// SyncFromReplicas performs anti-entropy with the node's replica set σ(p):
// it pulls every item stored under the node's path from each live replica
// and merges it locally. A peer that recovers after a crash calls this to
// catch up on the updates it missed — restoring the probabilistic
// consistency guarantee the paper's overlay layer provides (§2.1). It
// returns the number of items merged and how many replicas answered.
func (n *Node) SyncFromReplicas() (merged, replicasSeen int) {
	path := n.Path()
	for _, r := range n.Replicas() {
		//gridvine:serverctx anti-entropy is node-lifecycle work with no issuing request to inherit a context from
		msg, err := n.net.Send(context.Background(), n.id, r, simnet.Message{
			Type:    msgSync,
			Payload: SyncRequest{Path: path.String()},
		})
		if err != nil {
			continue
		}
		resp, ok := msg.Payload.(SyncResponse)
		if !ok {
			continue
		}
		replicasSeen++
		for _, it := range resp.Items {
			if n.localInsert(it.Key, it.Value) {
				merged++
				n.mu.RLock()
				hook := n.storeHook
				n.mu.RUnlock()
				if hook != nil {
					if k, err := keyspace.ParseKey(it.Key); err == nil {
						hook(OpInsert, k, it.Value)
					}
				}
			}
		}
	}
	return merged, replicasSeen
}

// handleSync answers a replica's anti-entropy pull.
func (n *Node) handleSync(req SyncRequest) SyncResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var resp SyncResponse
	for k, vs := range n.store {
		if len(k) >= len(req.Path) && k[:len(req.Path)] == req.Path {
			for _, v := range vs {
				resp.Items = append(resp.Items, SubtreeItem{Key: k, Value: v})
			}
		}
	}
	return resp
}

func init() {
	gob.Register(SyncRequest{})
	gob.Register(SyncResponse{})
}
