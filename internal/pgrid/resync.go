package pgrid

import (
	"context"
	"encoding/gob"

	"gridvine/internal/simnet"
)

const msgSync = "pgrid.sync"

// SyncRequest asks a replica for its full store content under the
// requesting peer's path (the full-store anti-entropy baseline).
type SyncRequest struct {
	Path string
}

// SyncResponse carries the replica's matching items plus its retained
// deletion tombstones, so a recovering peer reconciles deletes it missed
// instead of resurrecting them.
type SyncResponse struct {
	Items []SubtreeItem
	Tombs []Tombstone
}

// SyncFromReplicas performs anti-entropy with the node's replica set σ(p).
// A peer that recovers after a crash calls this to catch up on the updates
// (and deletes) it missed — restoring the probabilistic consistency
// guarantee the paper's overlay layer provides (§2.1). It is digest-based:
// replicas whose stores already agree answer with one digest message and
// ship nothing (see AntiEntropy). It returns the number of local store
// changes (items merged plus deletions applied) and how many replicas
// answered the digest exchange.
func (n *Node) SyncFromReplicas() (merged, replicasSeen int) {
	//gridvine:serverctx anti-entropy is node-lifecycle work with no issuing request to inherit a context from
	stats := n.AntiEntropy(context.Background())
	return stats.Pulled + stats.TombsPulled, stats.Replicas
}

// FullSyncFromReplicas is the pre-digest anti-entropy baseline: it pulls
// every item stored under the node's path from each live replica and merges
// it locally, applying shipped tombstones so deletes reconcile. Kept (and
// measured by the churn experiment) as the comparison point for the
// digest-based exchange — it converges identically but re-ships the whole
// store regardless of how little diverged. Returns the number of local
// store changes and how many replicas answered.
func (n *Node) FullSyncFromReplicas() (merged, replicasSeen int) {
	path := n.Path()
	for _, r := range n.Replicas() {
		//gridvine:serverctx anti-entropy is node-lifecycle work with no issuing request to inherit a context from
		msg, err := n.net.Send(context.Background(), n.id, r, simnet.Message{
			Type:    msgSync,
			Payload: SyncRequest{Path: path.String()},
		})
		if err != nil {
			n.markSuspect(r)
			continue
		}
		resp, ok := msg.Payload.(SyncResponse)
		if !ok {
			continue
		}
		n.clearSuspect(r)
		replicasSeen++
		// Tombstones first: a value the replica deleted must not land from
		// its item list and immediately resurrect.
		for _, t := range resp.Tombs {
			if n.applyTombstone(t.Key, t.Value) {
				merged++
			}
		}
		for _, it := range resp.Items {
			if n.mergeInsert(it.Key, it.Value) {
				merged++
			}
		}
	}
	return merged, replicasSeen
}

// handleSync answers a replica's full-store anti-entropy pull.
func (n *Node) handleSync(req SyncRequest) SyncResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var resp SyncResponse
	for k, vs := range n.store {
		if hasPrefix(k, req.Path) {
			for _, v := range vs {
				resp.Items = append(resp.Items, SubtreeItem{Key: k, Value: v})
			}
		}
	}
	for k, ts := range n.tombs {
		if hasPrefix(k, req.Path) {
			for _, t := range ts {
				resp.Tombs = append(resp.Tombs, Tombstone{Key: k, Value: t.value})
			}
		}
	}
	return resp
}

func init() {
	gob.Register(SyncRequest{})
	gob.Register(SyncResponse{})
}
