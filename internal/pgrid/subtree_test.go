package pgrid

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"gridvine/internal/keyspace"
)

func TestSubtreeRetrieveAll(t *testing.T) {
	_, ov := testOverlay(t, 16, 2, 21)
	issuer := ov.Nodes()[0]
	want := map[string]bool{}
	for i := 0; i < 30; i++ {
		v := fmt.Sprintf("item-%02d", i)
		key := keyspace.HashDefault(v)
		if _, err := issuer.Update(context.Background(), key, v); err != nil {
			t.Fatalf("Update: %v", err)
		}
		want[v] = true
	}
	items, _, err := issuer.SubtreeRetrieve(context.Background(), keyspace.Key{})
	if err != nil {
		t.Fatalf("SubtreeRetrieve: %v", err)
	}
	got := map[string]bool{}
	for _, it := range items {
		got[it.Value.(string)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct items, want %d", len(got), len(want))
	}
	for v := range want {
		if !got[v] {
			t.Errorf("missing item %q", v)
		}
	}
}

func TestSubtreeRetrieveNoReplicaDuplicates(t *testing.T) {
	_, ov := testOverlay(t, 16, 4, 22) // 4 replicas per leaf
	issuer := ov.Nodes()[0]
	key := keyspace.HashDefault("once")
	issuer.Update(context.Background(), key, "once-value")
	items, _, err := issuer.SubtreeRetrieve(context.Background(), keyspace.Key{})
	if err != nil {
		t.Fatalf("SubtreeRetrieve: %v", err)
	}
	n := 0
	for _, it := range items {
		if it.Value == "once-value" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("item returned %d times, want 1 (replica dedup)", n)
	}
}

func TestSubtreeRetrievePrefixFilters(t *testing.T) {
	_, ov := testOverlay(t, 16, 2, 23)
	issuer := ov.Nodes()[0]
	// "a…" keys start with different bits than "z…" keys under the
	// order-preserving hash ('a'=0x61 → 0110…, 'z'=0x7a → 0111…).
	aKey := keyspace.HashDefault("aardvark")
	zKey := keyspace.HashDefault("zebra")
	issuer.Update(context.Background(), aKey, "a-item")
	issuer.Update(context.Background(), zKey, "z-item")
	prefix := aKey.Prefix(8)
	items, _, err := issuer.SubtreeRetrieve(context.Background(), prefix)
	if err != nil {
		t.Fatalf("SubtreeRetrieve: %v", err)
	}
	for _, it := range items {
		if it.Value == "z-item" && !prefix.IsPrefixOf(zKey) {
			t.Error("subtree returned item outside prefix")
		}
	}
	found := false
	for _, it := range items {
		if it.Value == "a-item" {
			found = true
		}
	}
	if !found {
		t.Error("subtree missed item inside prefix")
	}
}

func TestSubtreeSurvivesFailures(t *testing.T) {
	net, ov := testOverlay(t, 24, 3, 24)
	issuer := ov.Nodes()[0]
	want := map[string]bool{}
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("s-%02d", i)
		issuer.Update(context.Background(), keyspace.HashDefault(v), v)
		want[v] = true
	}
	// Kill one peer per leaf (not the issuer): replicas must answer.
	killed := map[string]bool{}
	for _, n := range ov.Nodes() {
		p := n.Path().String()
		if !killed[p] && n.ID() != issuer.ID() {
			killed[p] = true
			net.Fail(n.ID())
		}
	}
	items, _, err := issuer.SubtreeRetrieve(context.Background(), keyspace.Key{})
	if err != nil {
		t.Fatalf("SubtreeRetrieve: %v", err)
	}
	got := map[string]bool{}
	for _, it := range items {
		got[it.Value.(string)] = true
	}
	missing := 0
	for v := range want {
		if !got[v] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d/%d items missing after single-replica failures", missing, len(want))
	}
}

func TestRangeRetrieve(t *testing.T) {
	_, ov := testOverlay(t, 16, 2, 25)
	issuer := ov.Nodes()[0]
	words := []string{"alpha", "beta", "delta", "gamma", "omega", "zeta"}
	for _, w := range words {
		issuer.Update(context.Background(), keyspace.HashDefault(w), w)
	}
	lo := keyspace.HashDefault("beta")
	hi := keyspace.HashDefault("omega")
	items, _, err := issuer.RangeRetrieve(context.Background(), lo, hi)
	if err != nil {
		t.Fatalf("RangeRetrieve: %v", err)
	}
	got := map[string]bool{}
	for _, it := range items {
		got[it.Value.(string)] = true
	}
	// Lexicographic range [beta, omega] = beta, delta, gamma, omega.
	for _, w := range []string{"beta", "delta", "gamma", "omega"} {
		if !got[w] {
			t.Errorf("range missing %q (got %v)", w, keys(got))
		}
	}
	for _, w := range []string{"alpha", "zeta"} {
		if got[w] {
			t.Errorf("range wrongly includes %q", w)
		}
	}
}

func TestRangeRetrieveEmptyRange(t *testing.T) {
	_, ov := testOverlay(t, 8, 2, 26)
	issuer := ov.Nodes()[0]
	issuer.Update(context.Background(), keyspace.HashDefault("mid"), "mid")
	lo := keyspace.HashDefault("zzz")
	hi := keyspace.HashDefault("aaa")
	items, _, err := issuer.RangeRetrieve(context.Background(), lo, hi)
	if err != nil {
		t.Fatalf("RangeRetrieve: %v", err)
	}
	if len(items) != 0 {
		t.Errorf("inverted range returned %d items", len(items))
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
