package pgrid

import (
	"fmt"
	"math/rand"
	"sort"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// BuildOptions parameterizes static overlay construction.
type BuildOptions struct {
	// Peers is the number of nodes to create. Required.
	Peers int
	// ReplicaFactor is the target number of peers per leaf path (≥1).
	// Default 2: the paper's P-Grid deployment replicates each path for
	// fault tolerance and churn resilience.
	ReplicaFactor int
	// SampleKeys, when non-empty, drives data-adaptive (unbalanced) trie
	// construction: leaves are split where the sample is dense, modelling
	// P-Grid's storage load balancing under the order-preserving hash.
	// When empty, a balanced trie is built.
	SampleKeys []keyspace.Key
	// Config is applied to every node.
	Config Config
	// Rng drives randomized assignment; required.
	Rng *rand.Rand
}

// Overlay is a handle on a set of nodes forming one P-Grid network, used by
// tests, experiments and the public API. The nodes communicate exclusively
// through their transport; Overlay itself is bookkeeping.
type Overlay struct {
	nodes  []*Node
	byID   map[simnet.PeerID]*Node
	byPath map[string][]*Node
}

// Build constructs a static P-Grid overlay on the given network: it chooses
// leaf paths (balanced, or adapted to SampleKeys), assigns ReplicaFactor
// peers per leaf, wires complete routing tables and replica sets, and
// registers every node on the network.
func Build(net simnet.Registrar, opts BuildOptions) (*Overlay, error) {
	if opts.Peers <= 0 {
		return nil, fmt.Errorf("pgrid: Peers must be positive, got %d", opts.Peers)
	}
	if opts.ReplicaFactor <= 0 {
		opts.ReplicaFactor = 2
	}
	if opts.Rng == nil {
		return nil, fmt.Errorf("pgrid: Rng is required")
	}

	leaves := opts.Peers / opts.ReplicaFactor
	if leaves < 1 {
		leaves = 1
	}
	var paths []keyspace.Key
	var weights []int
	if len(opts.SampleKeys) > 0 {
		paths, weights = adaptivePaths(opts.SampleKeys, opts.Peers, opts.ReplicaFactor)
	} else {
		paths = balancedPaths(leaves)
	}

	ov := &Overlay{byID: make(map[simnet.PeerID]*Node), byPath: make(map[string][]*Node)}

	// Peer-to-leaf assignment: proportional to sample load when available
	// (every leaf gets at least one peer; dense leaves get replica sets —
	// P-Grid's replication-driven load balancing), round-robin otherwise.
	counts := assignPeerCounts(opts.Peers, len(paths), weights)
	i := 0
	for leafIdx, path := range paths {
		for c := 0; c < counts[leafIdx]; c++ {
			id := simnet.PeerID(fmt.Sprintf("peer-%03d", i))
			i++
			cfg := opts.Config
			cfg.Seed = opts.Rng.Int63()
			node := NewNode(id, path, net, cfg)
			ov.nodes = append(ov.nodes, node)
			ov.byID[id] = node
			ov.byPath[path.String()] = append(ov.byPath[path.String()], node)
			net.Register(id, node)
		}
	}

	ov.wire(opts.Rng, opts.Config.withDefaults().RefsPerLevel)
	return ov, nil
}

// wire fills routing tables and replica sets from global knowledge. A
// prefix index keeps construction near-linear so experiment-scale overlays
// (thousands of peers) build quickly.
func (ov *Overlay) wire(rng *rand.Rand, refsPerLevel int) {
	// byPrefix[p] lists the nodes whose path starts with p (including p
	// itself). Total index size is Σ depth(node).
	byPrefix := map[string][]*Node{}
	for _, n := range ov.nodes {
		path := n.Path().String()
		for l := 0; l <= len(path); l++ {
			byPrefix[path[:l]] = append(byPrefix[path[:l]], n)
		}
	}
	for _, n := range ov.nodes {
		// Replicas: same path.
		for _, sib := range ov.byPath[n.Path().String()] {
			if sib.ID() != n.ID() {
				n.AddReplica(sib.ID())
			}
		}
		// Refs: for each level l of the path, peers whose path lies in the
		// complementary subtree (prefix = path[:l] + ¬path[l]). Nodes whose
		// own path is shorter than the complement prefix also qualify when
		// it extends their path (possible in unbalanced tries).
		path := n.Path()
		for l := 0; l < path.Len(); l++ {
			complement := path.Prefix(l).Append(1 - path.Bit(l))
			pool := byPrefix[complement.String()]
			if len(pool) == 0 {
				// Unbalanced trie: the complement subtree may be covered by a
				// node with a shorter path.
				for cut := complement.Len() - 1; cut >= 0 && len(pool) == 0; cut-- {
					pool = ov.byPath[complement.Prefix(cut).String()]
				}
			}
			// Sample refsPerLevel distinct references from the pool.
			picked := map[simnet.PeerID]bool{n.ID(): true}
			added := 0
			for attempt := 0; attempt < 8*refsPerLevel && added < refsPerLevel && added < len(pool); attempt++ {
				cand := pool[rng.Intn(len(pool))]
				if picked[cand.ID()] {
					continue
				}
				picked[cand.ID()] = true
				n.AddRef(l, cand.ID())
				added++
			}
			if added == 0 {
				// Tiny pools: deterministic fill.
				for _, cand := range pool {
					if !picked[cand.ID()] {
						n.AddRef(l, cand.ID())
						added++
						if added >= refsPerLevel {
							break
						}
					}
				}
			}
		}
	}
}

// balancedPaths returns a complete prefix-free partition of the key space
// into exactly the requested number of leaves, with depths differing by at
// most one. It starts from the root and repeatedly splits a shallowest
// leaf, which preserves completeness at every step.
func balancedPaths(leaves int) []keyspace.Key {
	paths := []keyspace.Key{{}}
	for len(paths) < leaves {
		// Split the first shallowest leaf.
		best := 0
		for i, p := range paths {
			if p.Len() < paths[best].Len() {
				best = i
			}
		}
		target := paths[best]
		paths = append(paths[:best], paths[best+1:]...)
		paths = append(paths, target.Append(0), target.Append(1))
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i].Compare(paths[j]) < 0 })
	return paths
}

// adaptivePaths splits the trie where the key sample is dense, producing an
// unbalanced partition with roughly equal storage load per peer. This
// mirrors P-Grid's storage load balancing: realistic data keyed by the
// order-preserving hash shares long prefixes (URIs, accessions), so the
// dense key-space region must be split far deeper than a balanced trie
// would — which necessarily peels off empty sibling leaves along the shared
// prefix. Splitting continues while the peer budget allows: every leaf
// (empty ones included, for key-space coverage) needs at least one peer,
// and each loaded leaf should end up with about replicaFactor peers.
//
// It returns the leaf paths in key order together with each leaf's sample
// load (the weight used for proportional peer assignment).
//
// Each leaf carries its subset of the sample, so every split is O(subset)
// and the whole construction is O(|sample| · depth).
func adaptivePaths(sample []keyspace.Key, peers, replicaFactor int) ([]keyspace.Key, []int) {
	type leaf struct {
		path keyspace.Key
		keys []keyspace.Key
	}
	parts := []leaf{{path: keyspace.Key{}, keys: sample}}
	maxDepth := keyspace.DefaultDepth - 1
	for len(parts) < peers {
		empty := 0
		for _, p := range parts {
			if len(p.keys) == 0 {
				empty++
			}
		}
		loaded := len(parts) - empty
		targetLoaded := (peers - empty) / replicaFactor
		if targetLoaded < 1 {
			targetLoaded = 1
		}
		if loaded >= targetLoaded {
			break
		}
		// Split the most loaded splittable leaf. A leaf whose sample keys
		// are all identical cannot be split usefully (identical keys stay
		// on one side at every depth).
		best := -1
		for i, p := range parts {
			if p.path.Len() >= maxDepth || len(p.keys) < 2 || allEqualKeys(p.keys) {
				continue
			}
			if best == -1 || len(p.keys) > len(parts[best].keys) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		target := parts[best]
		bit := target.path.Len()
		var zero, one []keyspace.Key
		for _, k := range target.keys {
			if k.Len() <= bit || k.Bit(bit) == 0 {
				zero = append(zero, k)
			} else {
				one = append(one, k)
			}
		}
		parts = append(parts[:best], parts[best+1:]...)
		parts = append(parts,
			leaf{path: target.path.Append(0), keys: zero},
			leaf{path: target.path.Append(1), keys: one})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].path.Compare(parts[j].path) < 0 })
	paths := make([]keyspace.Key, len(parts))
	weights := make([]int, len(parts))
	for i, p := range parts {
		paths[i] = p.path
		weights[i] = len(p.keys)
	}
	return paths, weights
}

func allEqualKeys(keys []keyspace.Key) bool {
	for _, k := range keys[1:] {
		if !k.Equal(keys[0]) {
			return false
		}
	}
	return true
}

// assignPeerCounts distributes peers over leaves: at least one peer per
// leaf, the remainder proportional to the leaf weights (largest-remainder
// rounding). With nil weights the distribution is as even as possible.
func assignPeerCounts(peers, leaves int, weights []int) []int {
	counts := make([]int, leaves)
	for i := range counts {
		counts[i] = 1
	}
	extra := peers - leaves
	if extra <= 0 {
		// More leaves than peers cannot happen (builders bound splits), but
		// guard by truncating: the first peers leaves get one peer each.
		return counts
	}
	totalWeight := 0
	for _, w := range weights {
		totalWeight += w
	}
	if len(weights) != leaves || totalWeight == 0 {
		// Even spread.
		for i := 0; i < extra; i++ {
			counts[i%leaves]++
		}
		return counts
	}
	type slot struct {
		idx  int
		frac float64
	}
	assigned := 0
	slots := make([]slot, leaves)
	for i, w := range weights {
		share := float64(extra) * float64(w) / float64(totalWeight)
		whole := int(share)
		counts[i] += whole
		assigned += whole
		slots[i] = slot{idx: i, frac: share - float64(whole)}
	}
	sort.Slice(slots, func(a, b int) bool {
		if slots[a].frac != slots[b].frac {
			return slots[a].frac > slots[b].frac
		}
		return slots[a].idx < slots[b].idx
	})
	for i := 0; i < extra-assigned; i++ {
		counts[slots[i%leaves].idx]++
	}
	return counts
}

// Nodes returns the overlay's nodes in creation order.
func (ov *Overlay) Nodes() []*Node { return ov.nodes }

// Node returns the node with the given id, or nil.
func (ov *Overlay) Node(id simnet.PeerID) *Node { return ov.byID[id] }

// RandomNode picks a uniformly random node.
func (ov *Overlay) RandomNode(rng *rand.Rand) *Node {
	return ov.nodes[rng.Intn(len(ov.nodes))]
}

// Paths returns the distinct leaf paths in key order.
func (ov *Overlay) Paths() []keyspace.Key {
	seen := map[string]bool{}
	var out []keyspace.Key
	for _, n := range ov.nodes {
		p := n.Path()
		if !seen[p.String()] {
			seen[p.String()] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// CheckCoverage verifies the structural invariant of a P-Grid trie: the set
// of leaf paths is prefix-free and covers the whole key space exactly.
func (ov *Overlay) CheckCoverage() error {
	paths := ov.Paths()
	if len(paths) == 0 {
		return fmt.Errorf("pgrid: no paths")
	}
	maxDepth := 0
	for _, p := range paths {
		if p.Len() > maxDepth {
			maxDepth = p.Len()
		}
	}
	for i := range paths {
		for j := range paths {
			if i != j && paths[i].IsPrefixOf(paths[j]) {
				return fmt.Errorf("pgrid: path %q is a prefix of %q", paths[i], paths[j])
			}
		}
	}
	// Complete cover: Σ 2^(maxDepth − len(p)) == 2^maxDepth.
	var total uint64
	for _, p := range paths {
		total += 1 << uint(maxDepth-p.Len())
	}
	if total != 1<<uint(maxDepth) {
		return fmt.Errorf("pgrid: paths cover %d/%d of the key space at depth %d", total, uint64(1)<<uint(maxDepth), maxDepth)
	}
	return nil
}

// MaxPathDepth returns the deepest leaf path length.
func (ov *Overlay) MaxPathDepth() int {
	d := 0
	for _, n := range ov.nodes {
		if l := n.Path().Len(); l > d {
			d = l
		}
	}
	return d
}

// StoreLoadStats returns the min, max and mean number of values stored per
// node — the quantity P-Grid's load balancing equalizes.
func (ov *Overlay) StoreLoadStats() (min, max int, mean float64) {
	if len(ov.nodes) == 0 {
		return 0, 0, 0
	}
	min = ov.nodes[0].StoreSize()
	total := 0
	for _, n := range ov.nodes {
		s := n.StoreSize()
		total += s
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max, float64(total) / float64(len(ov.nodes))
}
