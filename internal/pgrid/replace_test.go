package pgrid

import (
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// slotValue is a Replacer test type: one live value per (Owner, Slot) pair.
type slotValue struct {
	Owner string
	Slot  string
	Seq   int
}

func (v slotValue) Replaces(old any) bool {
	o, ok := old.(slotValue)
	return ok && o.Owner == v.Owner && o.Slot == v.Slot
}

func init() {
	gob.Register(slotValue{})
}

func buildReplaceOverlay(t testing.TB, peers int, seed int64) *Overlay {
	t.Helper()
	ov, err := Build(simnet.NewNetwork(), BuildOptions{
		Peers:         peers,
		ReplicaFactor: 2,
		Rng:           rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ov
}

// TestReplaceSupersedes pins the core semantics: a replace removes every
// value the new one Replaces, keeps unrelated values, and collapses exact
// duplicates.
func TestReplaceSupersedes(t *testing.T) {
	ov := buildReplaceOverlay(t, 16, 3)
	n := ov.Nodes()[0]
	key := keyspace.Hash("replace-slot", keyspace.DefaultDepth)

	if _, err := n.Replace(context.Background(), key, slotValue{Owner: "p1", Slot: "s", Seq: 1}); err != nil {
		t.Fatalf("first replace: %v", err)
	}
	if _, err := n.Replace(context.Background(), key, slotValue{Owner: "p2", Slot: "s", Seq: 1}); err != nil {
		t.Fatalf("other owner: %v", err)
	}
	if _, err := n.Replace(context.Background(), key, slotValue{Owner: "p1", Slot: "s", Seq: 2}); err != nil {
		t.Fatalf("supersede: %v", err)
	}
	// Replacing with an identical value is a no-op, not a duplicate.
	if _, err := n.Replace(context.Background(), key, slotValue{Owner: "p1", Slot: "s", Seq: 2}); err != nil {
		t.Fatalf("idempotent replace: %v", err)
	}

	values, _, err := ov.Nodes()[5].Retrieve(context.Background(), key)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	got := map[string]int{}
	for _, v := range values {
		sv, ok := v.(slotValue)
		if !ok {
			t.Fatalf("unexpected value %T", v)
		}
		got[sv.Owner] = sv.Seq
	}
	if len(values) != 2 || got["p1"] != 2 || got["p2"] != 1 {
		t.Errorf("stored = %v", values)
	}
}

// TestReplaceReplicates checks replicas converge to the superseded state.
func TestReplaceReplicates(t *testing.T) {
	ov := buildReplaceOverlay(t, 16, 4)
	key := keyspace.Hash("replicated-slot", keyspace.DefaultDepth)
	issuer := ov.Nodes()[1]
	for seq := 1; seq <= 3; seq++ {
		if _, err := issuer.Replace(context.Background(), key, slotValue{Owner: "p", Slot: "s", Seq: seq}); err != nil {
			t.Fatalf("replace %d: %v", seq, err)
		}
	}
	holders := 0
	for _, n := range ov.Nodes() {
		if !n.Responsible(key) {
			continue
		}
		vs := n.LocalGet(key)
		holders++
		if len(vs) != 1 || vs[0].(slotValue).Seq != 3 {
			t.Errorf("node %s stores %v, want single Seq=3", n.ID(), vs)
		}
	}
	if holders == 0 {
		t.Fatal("no responsible node found")
	}
}

// TestReplaceFiresStoreHook verifies the hook sees the collapsed
// delete+insert sequence — what keeps the mediation layer's mirrored state
// in sync.
func TestReplaceFiresStoreHook(t *testing.T) {
	ov := buildReplaceOverlay(t, 8, 5)
	key := keyspace.Hash("hooked-slot", keyspace.DefaultDepth)
	var mu sync.Mutex
	events := map[string]int{}
	for _, n := range ov.Nodes() {
		n.SetStoreHook(func(op Op, _ keyspace.Key, _ any) {
			mu.Lock()
			events[op.String()]++
			mu.Unlock()
		})
	}
	issuer := ov.Nodes()[0]
	if _, err := issuer.Replace(context.Background(), key, slotValue{Owner: "p", Slot: "s", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := issuer.Replace(context.Background(), key, slotValue{Owner: "p", Slot: "s", Seq: 2}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if events["insert"] < 2 || events["delete"] < 1 {
		t.Errorf("hook events = %v, want ≥2 inserts and ≥1 delete", events)
	}
}

// TestReplaceNonReplacerInserts: values without a Replaces method behave
// like plain inserts under OpReplace.
func TestReplaceNonReplacerInserts(t *testing.T) {
	ov := buildReplaceOverlay(t, 8, 6)
	key := keyspace.Hash("plain-slot", keyspace.DefaultDepth)
	n := ov.Nodes()[2]
	for i := 0; i < 2; i++ {
		if _, err := n.Replace(context.Background(), key, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	values, _, err := n.Retrieve(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 2 {
		t.Errorf("stored = %v, want both plain values", values)
	}
}

// TestReplaceConcurrentPublishers exercises the point of the atomic
// operation under -race: concurrent publishers of distinct slots never lose
// each other's value, and each slot converges to exactly one value.
func TestReplaceConcurrentPublishers(t *testing.T) {
	ov := buildReplaceOverlay(t, 16, 7)
	key := keyspace.Hash("contended-slot", keyspace.DefaultDepth)
	const owners = 8
	var wg sync.WaitGroup
	for w := 0; w < owners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			issuer := ov.Nodes()[w%len(ov.Nodes())]
			for seq := 1; seq <= 5; seq++ {
				if _, err := issuer.Replace(context.Background(), key, slotValue{Owner: fmt.Sprintf("p%d", w), Slot: "s", Seq: seq}); err != nil {
					t.Errorf("owner %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	values, _, err := ov.Nodes()[0].Retrieve(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, v := range values {
		sv := v.(slotValue)
		seen[sv.Owner]++
		if sv.Seq != 5 {
			t.Errorf("owner %s converged to Seq=%d, want 5", sv.Owner, sv.Seq)
		}
	}
	if len(seen) != owners {
		t.Errorf("owners stored = %d, want %d (%v)", len(seen), owners, seen)
	}
	for o, c := range seen {
		if c != 1 {
			t.Errorf("owner %s has %d values, want 1", o, c)
		}
	}
}
