package pgrid

import (
	"context"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"reflect"
	"sort"

	"gridvine/internal/keyspace"
	"gridvine/internal/simnet"
)

// Digest-based push-pull anti-entropy between replica sets (σ(p)).
//
// Replicas of a leaf path exchange Merkle-style subtree digests: the key
// space under the shared path is split into 2^DigestBucketBits prefix
// buckets, each summarized by an order-independent XOR fold of its item
// hashes. Identical stores compare equal in one message; differing stores
// narrow the repair to the differing buckets and ship only the items (and
// deletion tombstones) one side lacks — replacing the full-store pull the
// overlay used before, whose cost grew with store size regardless of how
// little had diverged.

// Message type identifiers for the anti-entropy exchange.
const (
	msgDigest = "pgrid.digest" // bucketed subtree digest exchange
	msgRepair = "pgrid.repair" // item-level diff and data shipment
)

// tombSalt separates tombstone hashes from live-item hashes so a bucket
// holding a value and a bucket holding its tombstone never compare equal.
const tombSalt = 0x9e3779b97f4a7c15

// DigestRequest asks a replica to digest its store under Path, bucketed by
// the next BucketBits key bits. Carries no stored data.
type DigestRequest struct {
	Path       string
	BucketBits int
}

// DigestResponse carries the replica's per-bucket digests: Items folds the
// live values per key-prefix bucket, Tombs folds the deletion tombstones.
// Carries no stored data.
type DigestResponse struct {
	Items map[string]uint64
	Tombs map[string]uint64
}

// ItemDigest identifies one stored value (or tombstone) by key and content
// hash, without carrying the value itself.
type ItemDigest struct {
	Key  string
	Hash uint64
}

// Tombstone is one shipped deletion: the key and deleted value, so the
// receiver can apply (and retain) the delete.
type Tombstone struct {
	Key   string
	Value any
}

// RepairRequest narrows the diff to the differing buckets: Prefixes lists
// them, Have/HaveTombs enumerate the issuer's item and tombstone digests
// under those prefixes. Carries hashes only, no stored data.
type RepairRequest struct {
	Prefixes  []string
	Have      []ItemDigest
	HaveTombs []ItemDigest
}

// RepairResponse completes the push-pull exchange: Missing and Tombs carry
// the receiver's data the issuer lacks (the pull half); Want and WantTombs
// name the issuer's digests the receiver lacks, which the issuer then ships
// back as a replication batch (the push half).
type RepairResponse struct {
	Missing   []SubtreeItem
	Tombs     []Tombstone
	Want      []ItemDigest
	WantTombs []ItemDigest
}

// RepairStats summarizes one AntiEntropy pass.
type RepairStats struct {
	Replicas    int // replicas that completed a digest exchange
	Pulled      int // items merged from replicas
	Pushed      int // items shipped to replicas
	TombsPulled int // deletions applied from replica tombstones
	TombsPushed int // tombstones shipped to replicas
	HotPushed   int // hot-list entries re-shipped by targeted repair
	Messages    int // transport sends spent
}

// itemHash digests one stored (key, value) pair. Values are hashed by their
// Go representation (type + %#v), which is deterministic for the flat
// struct/string/scalar values the overlay stores.
func itemHash(key string, value any) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)                        //nolint:errcheck
	fmt.Fprintf(h, "\x00%T\x00%#v", value, value) //nolint:errcheck
	return h.Sum64()
}

// bucketOf returns the digest bucket for a key: its prefix extended
// bucketBits beyond the shared path (clamped to the key length).
func bucketOf(key string, pathLen, bucketBits int) string {
	end := pathLen + bucketBits
	if end > len(key) {
		end = len(key)
	}
	return key[:end]
}

// digestBuckets folds the node's store and tombstones under path into
// per-bucket digests. XOR folding makes the digest order-independent, so
// replicas agree regardless of map iteration or arrival order.
func (n *Node) digestBuckets(path string, bucketBits int) (items, tombs map[string]uint64) {
	items = make(map[string]uint64)
	tombs = make(map[string]uint64)
	n.mu.RLock()
	defer n.mu.RUnlock()
	for k, vs := range n.store {
		if !hasPrefix(k, path) {
			continue
		}
		b := bucketOf(k, len(path), bucketBits)
		for _, v := range vs {
			items[b] ^= itemHash(k, v)
		}
	}
	for k, ts := range n.tombs {
		if !hasPrefix(k, path) {
			continue
		}
		b := bucketOf(k, len(path), bucketBits)
		for _, t := range ts {
			tombs[b] ^= itemHash(k, t.value) ^ tombSalt
		}
	}
	return items, tombs
}

func hasPrefix(k, prefix string) bool {
	return len(k) >= len(prefix) && k[:len(prefix)] == prefix
}

// handleDigest answers a replica's digest request.
func (n *Node) handleDigest(req DigestRequest) DigestResponse {
	items, tombs := n.digestBuckets(req.Path, req.BucketBits)
	return DigestResponse{Items: items, Tombs: tombs}
}

// localDiff enumerates this node's items and tombstones under the given
// prefixes, returning their digests plus a resolution map from digest to
// concrete data (for shipping the push half).
func (n *Node) localDiff(prefixes []string) (have, haveTombs []ItemDigest, items map[ItemDigest]any, tombVals map[ItemDigest]any) {
	items = make(map[ItemDigest]any)
	tombVals = make(map[ItemDigest]any)
	n.mu.RLock()
	defer n.mu.RUnlock()
	for k, vs := range n.store {
		for _, p := range prefixes {
			if hasPrefix(k, p) {
				for _, v := range vs {
					d := ItemDigest{Key: k, Hash: itemHash(k, v)}
					have = append(have, d)
					items[d] = v
				}
				break
			}
		}
	}
	for k, ts := range n.tombs {
		for _, p := range prefixes {
			if hasPrefix(k, p) {
				for _, t := range ts {
					d := ItemDigest{Key: k, Hash: itemHash(k, t.value)}
					haveTombs = append(haveTombs, d)
					tombVals[d] = t.value
				}
				break
			}
		}
	}
	return have, haveTombs, items, tombVals
}

// handleRepair answers the item-level diff: data the issuer lacks rides
// back in the response, digests the receiver lacks are requested back.
func (n *Node) handleRepair(req RepairRequest) RepairResponse {
	issuerHas := make(map[ItemDigest]bool, len(req.Have))
	for _, d := range req.Have {
		issuerHas[d] = true
	}
	issuerTombs := make(map[ItemDigest]bool, len(req.HaveTombs))
	for _, d := range req.HaveTombs {
		issuerTombs[d] = true
	}

	have, haveTombs, items, tombVals := n.localDiff(req.Prefixes)
	var resp RepairResponse
	localHas := make(map[ItemDigest]bool, len(have))
	for _, d := range have {
		localHas[d] = true
		if !issuerHas[d] {
			resp.Missing = append(resp.Missing, SubtreeItem{Key: d.Key, Value: items[d]})
		}
	}
	localTombs := make(map[ItemDigest]bool, len(haveTombs))
	for _, d := range haveTombs {
		localTombs[d] = true
		if !issuerTombs[d] {
			resp.Tombs = append(resp.Tombs, Tombstone{Key: d.Key, Value: tombVals[d]})
		}
	}
	for _, d := range req.Have {
		// Never ask for an item this node has tombstoned: within repair the
		// delete wins, so the issuer's copy is the stale one (its own pull
		// half receives the tombstone in this same exchange).
		if !localHas[d] && !localTombs[d] {
			resp.Want = append(resp.Want, d)
		}
	}
	for _, d := range req.HaveTombs {
		if !localTombs[d] {
			resp.WantTombs = append(resp.WantTombs, d)
		}
	}
	return resp
}

// mergeInsert inserts a value pulled by anti-entropy unless a local
// tombstone marks it deleted — within repair, the delete wins; only a fresh
// direct insert supersedes a tombstone. Fires the store hook on change.
func (n *Node) mergeInsert(key string, value any) bool {
	n.mu.Lock()
	for _, t := range n.tombs[key] {
		if reflect.DeepEqual(t.value, value) {
			n.mu.Unlock()
			return false
		}
	}
	changed := false
	dup := false
	for _, v := range n.store[key] {
		if reflect.DeepEqual(v, value) {
			dup = true
			break
		}
	}
	if !dup {
		n.store[key] = append(n.store[key], value)
		changed = true
	}
	hook := n.storeHook
	n.mu.Unlock()

	if changed && hook != nil {
		if k, err := keyspace.ParseKey(key); err == nil {
			hook(OpInsert, k, value)
		}
	}
	return changed
}

// applyTombstone applies a deletion pulled by anti-entropy: the tombstone
// is retained locally (so it propagates onward) and the value, if present,
// is removed. Reports whether the store changed.
func (n *Node) applyTombstone(key string, value any) bool {
	n.mu.Lock()
	n.recordTombLocked(key, value)
	changed := n.deleteLocked(key, value)
	hook := n.storeHook
	n.mu.Unlock()

	if changed && hook != nil {
		if k, err := keyspace.ParseKey(key); err == nil {
			hook(OpDelete, k, value)
		}
	}
	return changed
}

// AntiEntropy runs one push-pull repair round against every replica in
// σ(p): targeted repair of hot-listed keys first, then a digest exchange
// that ships only what differs. Call it periodically (or after recovering
// from a crash) to restore the probabilistic consistency guarantee of the
// paper's overlay layer (§2.1). Unreachable replicas are skipped (and
// suspected); the round never fails as a whole.
func (n *Node) AntiEntropy(ctx context.Context) RepairStats {
	var stats RepairStats
	for _, r := range n.Replicas() {
		if err := ctx.Err(); err != nil {
			return stats
		}
		n.repairWith(ctx, r, &stats)
	}
	return stats
}

// repairWith runs the per-replica exchange, folding counters into stats.
func (n *Node) repairWith(ctx context.Context, r simnet.PeerID, stats *RepairStats) {
	// Targeted repair: re-ship the keys whose replication pushes to this
	// replica failed. Their current state (live values + tombstones) rides
	// one BatchReplicate; the digest pass below then only pays for
	// divergence the hot-list did not already explain.
	hot := n.takeHotKeys(r)
	if len(hot) > 0 {
		entries := n.hotEntries(hot)
		if len(entries) > 0 {
			stats.Messages++
			if _, err := n.net.Send(ctx, n.id, r, simnet.Message{Type: msgBatchRep, Payload: BatchReplicate{Entries: entries}}); err != nil {
				n.noteReplicaFailure(r, hot...)
				return
			}
			stats.HotPushed += len(entries)
		}
	}

	path := n.Path().String()
	bits := n.cfg.DigestBucketBits
	stats.Messages++
	msg, err := n.net.Send(ctx, n.id, r, simnet.Message{Type: msgDigest, Payload: DigestRequest{Path: path, BucketBits: bits}})
	if err != nil {
		n.markSuspect(r)
		return
	}
	n.clearSuspect(r)
	theirs, ok := msg.Payload.(DigestResponse)
	if !ok {
		return
	}
	stats.Replicas++

	ours, ourTombs := n.digestBuckets(path, bits)
	prefixes := diffBuckets(ours, ourTombs, theirs.Items, theirs.Tombs)
	if len(prefixes) == 0 {
		return
	}

	have, haveTombs, items, tombVals := n.localDiff(prefixes)
	stats.Messages++
	msg, err = n.net.Send(ctx, n.id, r, simnet.Message{Type: msgRepair, Payload: RepairRequest{Prefixes: prefixes, Have: have, HaveTombs: haveTombs}})
	if err != nil {
		n.markSuspect(r)
		return
	}
	rep, ok := msg.Payload.(RepairResponse)
	if !ok {
		return
	}

	// Pull half: apply the replica's tombstones first so a value it deleted
	// does not land and immediately resurrect from its Missing list.
	for _, t := range rep.Tombs {
		n.applyTombstone(t.Key, t.Value)
		stats.TombsPulled++
	}
	for _, it := range rep.Missing {
		if n.mergeInsert(it.Key, it.Value) {
			stats.Pulled++
		}
	}

	// Push half: ship what the replica asked for as one replication batch —
	// inserts for live values, deletes for tombstones (the receiver records
	// the tombstone when applying the delete).
	var push []BatchEntry
	for _, d := range rep.Want {
		if v, ok := items[d]; ok {
			push = append(push, BatchEntry{Key: d.Key, Op: OpInsert, Value: v})
		}
	}
	pushTombs := 0
	for _, d := range rep.WantTombs {
		if v, ok := tombVals[d]; ok {
			push = append(push, BatchEntry{Key: d.Key, Op: OpDelete, Value: v})
			pushTombs++
		}
	}
	if len(push) > 0 {
		stats.Messages++
		if _, err := n.net.Send(ctx, n.id, r, simnet.Message{Type: msgBatchRep, Payload: BatchReplicate{Entries: push}}); err != nil {
			keys := make([]string, len(push))
			for i, e := range push {
				keys[i] = e.Key
			}
			n.noteReplicaFailure(r, keys...)
			return
		}
		stats.Pushed += len(push) - pushTombs
		stats.TombsPushed += pushTombs
	}
}

// hotEntries builds the targeted-repair batch for hot-listed keys: the
// node's current live values as inserts plus retained tombstones as
// deletes, i.e. the key's full present state.
func (n *Node) hotEntries(keys []string) []BatchEntry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var entries []BatchEntry
	for _, k := range keys {
		for _, v := range n.store[k] {
			entries = append(entries, BatchEntry{Key: k, Op: OpInsert, Value: v})
		}
		for _, t := range n.tombs[k] {
			entries = append(entries, BatchEntry{Key: k, Op: OpDelete, Value: t.value})
		}
	}
	return entries
}

// diffBuckets returns the sorted union of bucket prefixes whose item or
// tombstone digests differ between the two sides.
func diffBuckets(aItems, aTombs, bItems, bTombs map[string]uint64) []string {
	diff := make(map[string]bool)
	mark := func(a, b map[string]uint64) {
		for p, d := range a {
			if b[p] != d {
				diff[p] = true
			}
		}
		for p, d := range b {
			if a[p] != d {
				diff[p] = true
			}
		}
	}
	mark(aItems, bItems)
	mark(aTombs, bTombs)
	out := make([]string, 0, len(diff))
	for p := range diff {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ContentDigest folds the node's entire store into one order-independent
// digest: replicas holding byte-identical stores compare equal. Tombstones
// are excluded — they are repair metadata, pruned independently.
func (n *Node) ContentDigest() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var d uint64
	for k, vs := range n.store {
		for _, v := range vs {
			d ^= itemHash(k, v)
		}
	}
	return d
}

func init() {
	gob.Register(DigestRequest{})
	gob.Register(DigestResponse{})
	gob.Register(RepairRequest{})
	gob.Register(RepairResponse{})
	gob.Register(ItemDigest{})
	gob.Register(Tombstone{})
	gob.Register(map[string]uint64(nil))
}
