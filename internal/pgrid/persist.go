package pgrid

import "sort"

// DumpState returns the node's full local store — live (key, value)
// items plus retained deletion tombstones — in deterministic key
// order, for use as a durable snapshot source. Routing state (refs,
// replicas) is deliberately excluded: it is rediscovered on rejoin,
// while store content is what a crash must not lose.
func (n *Node) DumpState() (items []SubtreeItem, tombs []Tombstone) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	keys := make([]string, 0, len(n.store))
	for k := range n.store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range n.store[k] {
			items = append(items, SubtreeItem{Key: k, Value: v})
		}
	}
	tkeys := make([]string, 0, len(n.tombs))
	for k := range n.tombs {
		tkeys = append(tkeys, k)
	}
	sort.Strings(tkeys)
	for _, k := range tkeys {
		for _, t := range n.tombs[k] {
			tombs = append(tombs, Tombstone{Key: k, Value: t.value})
		}
	}
	return items, tombs
}

// RestoreState loads recovered durable state into the node: snapshot
// items and tombstones first, then logged mutations replayed in append
// order. The apply is quiet — no store hooks fire and nothing
// replicates, because the state is already durable locally and the
// caller rebuilds any derived views itself. Replay is idempotent
// (duplicate inserts collapse, deletes of absent values only refresh
// their tombstone), so a mutation a snapshot already absorbed is
// harmless. Must run before the node starts serving traffic.
func (n *Node) RestoreState(items []SubtreeItem, tombs []Tombstone, muts []StoreMutation) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, it := range items {
		n.insertLocked(it.Key, it.Value)
	}
	for _, tb := range tombs {
		n.recordTombLocked(tb.Key, tb.Value)
	}
	for _, m := range muts {
		key := m.Key.String()
		switch m.Op {
		case OpInsert:
			n.insertLocked(key, m.Value)
		case OpDelete:
			n.recordTombLocked(key, m.Value)
			n.deleteLocked(key, m.Value)
		}
	}
}
