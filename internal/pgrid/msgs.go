package pgrid

import (
	"encoding/gob"

	"gridvine/internal/simnet"
)

// Message type identifiers on the transport.
const (
	msgExec      = "pgrid.exec"      // routed storage / query operation
	msgReplicate = "pgrid.replicate" // direct replica synchronization
	msgBatch     = "pgrid.batch"     // direct batched mutation delivery
	msgBatchRep  = "pgrid.batchrep"  // batched replica synchronization
	msgSubtree   = "pgrid.subtree"   // prefix-subtree enumeration step
	msgPing      = "pgrid.ping"      // liveness probe
)

// Op selects the storage operation an ExecRequest performs at the
// responsible peer.
type Op int

// Operations supported at the responsible peer. OpQuery invokes the
// registered application handler with the request payload — this is the
// Retrieve(key, q) primitive the mediation layer uses to ship triple-pattern
// queries to data (paper §2.3).
const (
	OpGet Op = iota
	OpInsert
	OpDelete
	OpQuery
	OpReplace
	// OpProbe resolves the responsible peer for a key without touching its
	// store: the answer carries the peer's path, which the batched write
	// path uses to compute the full key run the peer covers before shipping
	// it one BatchUpdate message.
	OpProbe
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpQuery:
		return "query"
	case OpReplace:
		return "replace"
	case OpProbe:
		return "probe"
	default:
		return "unknown"
	}
}

// Replacer lets a stored value type opt into atomic replacement. An
// OpReplace removes, under one key and one store lock acquisition, every
// stored value the incoming value Replaces, then inserts the incoming value
// — a single routed operation where the retrieve + delete + update sequence
// costs three routed round-trips and races with concurrent publishers of
// the same logical slot. Values that do not implement Replacer behave like
// plain inserts under OpReplace.
type Replacer interface {
	// Replaces reports whether the receiver supersedes the stored value —
	// e.g. a statistics digest supersedes the same origin peer's previous
	// digest for the same schema.
	Replaces(old any) bool
}

// ExecRequest asks the receiving peer to either perform the operation (if
// responsible for Key) or answer with closer references.
type ExecRequest struct {
	Key       string // binary key, e.g. "010011…"
	Op        Op
	Value     any  // for OpInsert / OpDelete
	Payload   any  // for OpQuery: handed to the application handler
	Recursive bool // forward server-side instead of answering with refs
	TTL       int  // remaining hops in recursive mode
}

// ExecResponse carries either the operation result (Responsible=true) or
// the next-hop candidates (Responsible=false).
type ExecResponse struct {
	Responsible bool
	NextHops    []simnet.PeerID
	Values      []any
	AppResult   any
	Chain       []simnet.PeerID // peers traversed (recursive mode)
	// Path is the answering responsible peer's trie path π(p); the batched
	// write path uses it to compute the contiguous key run the peer covers.
	Path string
}

// ReplicateRequest applies a storage mutation directly, without routing.
type ReplicateRequest struct {
	Key   string
	Op    Op // OpInsert, OpDelete or OpReplace
	Value any
}

// BatchEntry is one keyed mutation of a batched write.
type BatchEntry struct {
	Key   string
	Op    Op // OpInsert, OpDelete or OpReplace
	Value any
}

// BatchUpdate delivers a run of mutations to one responsible peer in a
// single message — the batched counterpart of N individual routed Updates.
// The receiver applies every entry whose key it is responsible for (in
// order), synchronizes its replicas with one BatchReplicate message each,
// and answers with a BatchResult. Entries outside the receiver's path (a
// concurrent path split, for instance) are left to the issuer to re-route.
type BatchUpdate struct {
	Entries []BatchEntry
}

// BatchResult reports which BatchUpdate entries the receiver applied, as
// indices into the shipped entry slice.
type BatchResult struct {
	Applied []int
}

// BatchReplicate carries the applied entries of one BatchUpdate to a
// replica — one synchronization message per replica per batch, where the
// per-entry path costs one per entry.
type BatchReplicate struct {
	Entries []BatchEntry
}

// SubtreeRequest asks a peer for its local items under Prefix plus the
// references needed to reach the rest of the prefix's subtree.
type SubtreeRequest struct {
	Prefix string
}

// SubtreeItem is one stored (key, value) pair returned by a subtree step.
type SubtreeItem struct {
	Key   string
	Value any
}

// SubtreeResponse returns the peer's path, matching local items, and
// further peers that cover sibling branches under the prefix.
type SubtreeResponse struct {
	Path     string
	Items    []SubtreeItem
	Onward   []simnet.PeerID
	Replicas []simnet.PeerID
}

func init() {
	gob.Register(ExecRequest{})
	gob.Register(ExecResponse{})
	gob.Register(ReplicateRequest{})
	gob.Register(BatchEntry{})
	gob.Register(BatchUpdate{})
	gob.Register(BatchResult{})
	gob.Register(BatchReplicate{})
	gob.Register(SubtreeRequest{})
	gob.Register(SubtreeResponse{})
	gob.Register(SubtreeItem{})
	gob.Register([]any(nil))
	gob.Register([]simnet.PeerID(nil))
}
