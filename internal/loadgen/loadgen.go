// Package loadgen drives a GridVine cluster through the wire protocol
// at scale: thousands of concurrent client connections, each issuing a
// mixed stream of writes and streamed queries, with per-operation
// latency recorded client-side. It is the measurement engine behind
// `gridvinectl load` and the EXP-Q daemon benchmark.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridvine/internal/triple"
	"gridvine/internal/wire"
)

// Config parameterizes one load run.
type Config struct {
	// Addrs are the daemons' wire client addresses; connections are
	// spread round-robin. Required.
	Addrs []string
	// Connections is the number of concurrent client connections
	// (default 64). Each connection is an independent worker.
	Connections int
	// Duration is how long to sustain the load (default 5s).
	Duration time.Duration
	// WriteRatio is the fraction of operations that are writes, in
	// [0,1] (default 0.2).
	WriteRatio float64
	// QueryPredicate is the predicate the query mix matches on
	// (default "Bench#p" — the preload namespace, so result sets are
	// stable under concurrent writes into the Load# namespace).
	QueryPredicate string
	// WritePredicate is the predicate written triples carry (default
	// "Load#p"). Keeping it disjoint from QueryPredicate keeps the
	// benchmark queries equivalence-checkable.
	WritePredicate string
	// QueryLimit caps rows per query (default 64).
	QueryLimit int
	// Seed makes the op mix deterministic per connection.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Connections <= 0 {
		c.Connections = 64
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.WriteRatio < 0 || c.WriteRatio > 1 {
		c.WriteRatio = 0.2
	}
	if c.QueryPredicate == "" {
		c.QueryPredicate = "Bench#p"
	}
	if c.WritePredicate == "" {
		c.WritePredicate = "Load#p"
	}
	if c.QueryLimit <= 0 {
		c.QueryLimit = 64
	}
	return c
}

// Result is one load run's aggregate: counts, sustained throughput,
// and client-observed latency percentiles across all operations.
type Result struct {
	Connections int           `json:"connections"`
	Elapsed     time.Duration `json:"-"`
	ElapsedMS   int64         `json:"elapsed_ms"`
	Ops         int64         `json:"ops"`
	Queries     int64         `json:"queries"`
	Writes      int64         `json:"writes"`
	Rows        int64         `json:"rows"`
	Errors      int64         `json:"errors"`
	QPS         float64       `json:"qps"`
	P50Micros   int64         `json:"p50_us"`
	P99Micros   int64         `json:"p99_us"`
}

// Run sustains the configured load until Duration elapses (or ctx
// fires early) and aggregates the workers' measurements. Individual
// operation failures are counted, not fatal — workers re-dial and keep
// going, so the run also measures behaviour across daemon restarts.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("loadgen: no addresses")
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		allLats []int64
		queries atomic.Int64
		writes  atomic.Int64
		rows    atomic.Int64
		errs    atomic.Int64
	)
	start := time.Now()
	for i := 0; i < cfg.Connections; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lats := worker(runCtx, cfg, i, &queries, &writes, &rows, &errs)
			mu.Lock()
			allLats = append(allLats, lats...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Connections: cfg.Connections,
		Elapsed:     elapsed,
		ElapsedMS:   elapsed.Milliseconds(),
		Queries:     queries.Load(),
		Writes:      writes.Load(),
		Rows:        rows.Load(),
		Errors:      errs.Load(),
	}
	res.Ops = res.Queries + res.Writes
	if elapsed > 0 {
		res.QPS = float64(res.Ops) / elapsed.Seconds()
	}
	sort.Slice(allLats, func(a, b int) bool { return allLats[a] < allLats[b] })
	res.P50Micros = percentile(allLats, 0.50)
	res.P99Micros = percentile(allLats, 0.99)
	return res, nil
}

// percentile reads the q-quantile from an ascending-sorted sample.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// worker owns one connection's lifetime: dial, issue ops until the run
// context fires, re-dial on failure. It returns the latencies (µs) of
// its successful operations.
func worker(ctx context.Context, cfg Config, id int, queries, writes, rows, errs *atomic.Int64) []int64 {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
	addr := cfg.Addrs[id%len(cfg.Addrs)]
	pat := triple.Pattern{S: triple.Var("s"), P: triple.Const(cfg.QueryPredicate), O: triple.Var("o")}
	var cl *wire.Client
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	var lats []int64
	for seq := 0; ctx.Err() == nil; seq++ {
		if cl == nil {
			c, err := wire.Dial(addr)
			if err != nil {
				errs.Add(1)
				select {
				case <-ctx.Done():
				case <-time.After(50 * time.Millisecond):
				}
				continue
			}
			cl = c
		}
		isWrite := rng.Float64() < cfg.WriteRatio
		began := time.Now()
		var err error
		if isWrite {
			err = doWrite(ctx, cl, cfg, id, seq)
		} else {
			err = doQuery(ctx, cl, cfg, &pat, rows)
		}
		if err != nil {
			if ctx.Err() != nil {
				break // run over; the failure is the cancellation
			}
			errs.Add(1)
			cl.Close()
			cl = nil
			continue
		}
		lats = append(lats, time.Since(began).Microseconds())
		if isWrite {
			writes.Add(1)
		} else {
			queries.Add(1)
		}
	}
	return lats
}

func doWrite(ctx context.Context, cl *wire.Client, cfg Config, id, seq int) error {
	opCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	rec, err := cl.Write(opCtx, wire.Write{Inserts: []triple.Triple{{
		Subject:   fmt.Sprintf("load-c%d-s%d", id, seq),
		Predicate: cfg.WritePredicate,
		Object:    fmt.Sprintf("v%d", seq),
	}}})
	if err != nil {
		return err
	}
	if rec.Applied == 0 {
		return fmt.Errorf("loadgen: write not applied")
	}
	return nil
}

func doQuery(ctx context.Context, cl *wire.Client, cfg Config, pat *triple.Pattern, rows *atomic.Int64) error {
	opCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	cur, err := cl.Query(opCtx, wire.Query{Pattern: pat, Limit: cfg.QueryLimit})
	if err != nil {
		return err
	}
	n := int64(0)
	for {
		if _, ok := cur.Next(opCtx); !ok {
			break
		}
		n++
	}
	if err := cur.Close(); err != nil {
		return err
	}
	rows.Add(n)
	return nil
}
