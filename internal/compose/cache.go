package compose

import (
	"context"
	"sort"
	"sync"
)

// entryKey identifies one cached closure: the source predicate plus every
// option that shapes the traversal. Queries running under different depth,
// confidence or loss bounds see different closures and must not share
// entries.
type entryKey struct {
	predicate     string
	maxDepth      int
	minConfidence float64
	maxLoss       float64
}

func keyFor(predicate string, opts Options) entryKey {
	return entryKey{
		predicate:     predicate,
		maxDepth:      opts.MaxDepth,
		minConfidence: opts.MinConfidence,
		maxLoss:       opts.MaxLoss,
	}
}

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	// Hits and Misses count Lookup outcomes.
	Hits, Misses uint64
	// Invalidations counts entries dropped by Invalidate calls (not the
	// calls themselves).
	Invalidations uint64
	// Builds counts entries installed through PutIfCurrent.
	Builds uint64
	// Entries is the current number of cached closures.
	Entries int
	// Version is the schema-graph version counter: it advances on every
	// mapping publish or replace the owner observes.
	Version uint64
}

// Cache holds the composite closures of one peer, keyed on (predicate,
// options) and guarded by a schema-graph version counter. Entries are
// shared, immutable values: callers must not mutate what Lookup returns.
//
// Invalidation is incremental and exact: Invalidate(schemas…) advances the
// version and drops only the entries whose build consulted one of the named
// schemas (Entry.Touched) — chains that never pass through a changed mapping
// survive. The version counter closes the build/invalidate race: a build
// snapshots Version before its first retrieval, and PutIfCurrent refuses the
// entry if the graph moved meanwhile, so a closure computed from a
// superseded graph is never served.
type Cache struct {
	mu            sync.Mutex
	version       uint64
	entries       map[entryKey]*Entry
	hits          uint64
	misses        uint64
	invalidations uint64
	builds        uint64
}

// NewCache returns an empty cache at version 0.
func NewCache() *Cache {
	return &Cache{entries: map[entryKey]*Entry{}}
}

// Version returns the current schema-graph version. Builds snapshot it
// before their first retrieval and stamp it on the entry they hand to
// PutIfCurrent.
func (c *Cache) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Lookup returns the cached closure for a predicate under the given options,
// counting the hit or miss.
func (c *Cache) Lookup(predicate string, opts Options) (*Entry, bool) {
	k := keyFor(predicate, opts.withDefaults())
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// PutIfCurrent installs a built entry unless the schema graph moved since
// the build started (e.Version no longer matches): a mapping publish or
// replace that raced the build may have changed what the build read, so the
// stale closure is discarded and reports false — the caller may still use
// the entry for its own query (it reflects a graph state that existed), it
// just must not be served to later queries.
func (c *Cache) PutIfCurrent(e *Entry) bool {
	k := keyFor(e.Source, e.Options)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Version != c.version {
		return false
	}
	c.entries[k] = e
	c.builds++
	return true
}

// Invalidate advances the schema-graph version and drops every entry whose
// build consulted one of the named schemas, returning how many were dropped.
// Call it with the source and target schema of every published or replaced
// mapping.
func (c *Cache) Invalidate(schemas ...string) int {
	if len(schemas) == 0 {
		return 0
	}
	changed := map[string]bool{}
	for _, s := range schemas {
		changed[s] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	dropped := 0
	for k, e := range c.entries {
		if touchesAny(e.Touched, changed) {
			delete(c.entries, k)
			dropped++
		}
	}
	c.invalidations += uint64(dropped)
	return dropped
}

// GetOrBuild returns the cached closure for a predicate, building and
// installing it on a miss. built reports whether a build ran (its messages
// are in Entry.BuildMessages — the caller charges them to the triggering
// query). A build error is returned as-is and caches nothing.
func (c *Cache) GetOrBuild(ctx context.Context, src MappingSource, predicate string, opts Options) (e *Entry, built bool, err error) {
	opts = opts.withDefaults()
	if e, ok := c.Lookup(predicate, opts); ok {
		return e, false, nil
	}
	v := c.Version()
	e, err = Build(ctx, src, predicate, opts)
	if err != nil {
		return nil, false, err
	}
	e.Version = v
	c.PutIfCurrent(e)
	return e, true, nil
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Builds:        c.builds,
		Entries:       len(c.entries),
		Version:       c.version,
	}
}

func touchesAny(sorted []string, set map[string]bool) bool {
	for _, s := range sorted {
		if set[s] {
			return true
		}
	}
	return false
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
