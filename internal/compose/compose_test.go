package compose

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"gridvine/internal/schema"
)

// mkMapping builds a manual mapping with explicit confidence and
// per-correspondence confidence 1.
func mkMapping(src, tgt string, conf float64, attrs [][2]string) schema.Mapping {
	corrs := make([]schema.Correspondence, 0, len(attrs))
	for _, a := range attrs {
		corrs = append(corrs, schema.Correspondence{SourceAttr: a[0], TargetAttr: a[1], Confidence: 1})
	}
	m := schema.NewMapping(src, tgt, schema.Equivalence, schema.Manual, corrs)
	m.Confidence = conf
	return m
}

// graphSource serves mappings from an in-memory adjacency map, charging one
// message per retrieval and recording the schemas consulted.
type graphSource struct {
	out      map[string][]schema.Mapping
	consults []string
	fail     map[string]bool
}

func (g *graphSource) source() MappingSource {
	return func(_ context.Context, name string) ([]schema.Mapping, int, error) {
		g.consults = append(g.consults, name)
		if g.fail[name] {
			return nil, 1, fmt.Errorf("unreachable key of %s", name)
		}
		return g.out[name], 1, nil
	}
}

func chainGraph() (*graphSource, []schema.Mapping) {
	ab := mkMapping("A", "B", 1, [][2]string{{"x", "bx"}, {"y", "by"}})
	bc := mkMapping("B", "C", 0.8, [][2]string{{"bx", "cx"}, {"by", "cy"}})
	cd := mkMapping("C", "D", 0.5, [][2]string{{"cx", "dx"}})
	g := &graphSource{out: map[string][]schema.Mapping{
		"A": {ab}, "B": {bc}, "C": {cd},
	}}
	return g, []schema.Mapping{ab, bc, cd}
}

func TestBuildChain(t *testing.T) {
	g, ms := chainGraph()
	e, err := Build(context.Background(), g.source(), "A#x", Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wantPreds := []string{"B#bx", "C#cx", "D#dx"}
	if len(e.Targets) != len(wantPreds) {
		t.Fatalf("targets = %+v, want %v", e.Targets, wantPreds)
	}
	for i, tg := range e.Targets {
		if tg.Predicate != wantPreds[i] {
			t.Errorf("target %d = %s, want %s", i, tg.Predicate, wantPreds[i])
		}
		if tg.Depth != i+1 || len(tg.Path) != i+1 {
			t.Errorf("target %s depth/path = %d/%d", tg.Predicate, tg.Depth, len(tg.Path))
		}
	}
	if got := e.Targets[2].Path; !reflect.DeepEqual(got, []string{ms[0].ID, ms[1].ID, ms[2].ID}) {
		t.Errorf("deep path = %v", got)
	}
	if c := e.Targets[2].Confidence; c != 1*0.8*0.5 {
		t.Errorf("deep confidence = %v", c)
	}
	// The deep composite translates x straight to dx.
	if attr, ok := e.Targets[2].Composed.TranslateAttr("x"); !ok || attr != "dx" {
		t.Errorf("composed translation = %q, %v", attr, ok)
	}
	// C→D drops the y chain: survival 1 of 2 first-hop attrs.
	if l := e.Targets[2].Loss; l != 0.5 {
		t.Errorf("deep loss = %v", l)
	}
	if l := e.Targets[0].Loss; l != 0 {
		t.Errorf("depth-1 loss = %v", l)
	}
	if !reflect.DeepEqual(e.Touched, []string{"A", "B", "C", "D"}) {
		t.Errorf("touched = %v", e.Touched)
	}
	// One retrieval per expandable wave item, one message each.
	if e.BuildMessages != 4 {
		t.Errorf("build messages = %d", e.BuildMessages)
	}
	if e.Reformulations != 3 {
		t.Errorf("reformulations = %d", e.Reformulations)
	}
}

func TestBuildMaxDepth(t *testing.T) {
	g, _ := chainGraph()
	e, err := Build(context.Background(), g.source(), "A#x", Options{MaxDepth: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(e.Targets) != 2 || e.Targets[1].Predicate != "C#cx" {
		t.Fatalf("targets = %+v", e.Targets)
	}
	// The depth-2 frontier item is not expanded, so C's key is never
	// consulted and a mapping change at C/D cannot affect this entry.
	if !reflect.DeepEqual(e.Touched, []string{"A", "B"}) {
		t.Errorf("touched = %v", e.Touched)
	}
}

func TestBuildConfidenceGate(t *testing.T) {
	g, _ := chainGraph()
	e, err := Build(context.Background(), g.source(), "A#x", Options{MinConfidence: 0.6})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// 1·0.8 = 0.8 passes, 0.8·0.5 = 0.4 is gated.
	if len(e.Targets) != 2 || e.Targets[1].Predicate != "C#cx" {
		t.Fatalf("targets = %+v", e.Targets)
	}
}

func TestBuildVisitedClaimIsWaveOrdered(t *testing.T) {
	// Diamond: A→B and A→C in wave 1, both reach D#dx in wave 2. The BFS
	// claims D#dx for the first wave-order path (through B); the C chain is
	// skipped, exactly as the iterative traversal would.
	ab := mkMapping("A", "B", 1, [][2]string{{"x", "bx"}})
	ac := mkMapping("A", "C", 1, [][2]string{{"x", "cx"}})
	bd := mkMapping("B", "D", 0.9, [][2]string{{"bx", "dx"}})
	cd := mkMapping("C", "D", 0.9, [][2]string{{"cx", "dx"}})
	g := &graphSource{out: map[string][]schema.Mapping{
		"A": {ab, ac}, "B": {bd}, "C": {cd},
	}}
	e, err := Build(context.Background(), g.source(), "A#x", Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var dTargets []Target
	for _, tg := range e.Targets {
		if tg.Predicate == "D#dx" {
			dTargets = append(dTargets, tg)
		}
	}
	if len(dTargets) != 1 {
		t.Fatalf("D#dx targets = %+v", dTargets)
	}
	if want := []string{ab.ID, bd.ID}; !reflect.DeepEqual(dTargets[0].Path, want) {
		t.Errorf("claimed path = %v, want %v", dTargets[0].Path, want)
	}
}

func TestLossPruningStopsFanOut(t *testing.T) {
	// A→B keeps both attributes; B→C keeps one of two (loss 0.5); C→D would
	// continue the lossy chain.
	ab := mkMapping("A", "B", 1, [][2]string{{"x", "bx"}, {"y", "by"}})
	bc := mkMapping("B", "C", 1, [][2]string{{"bx", "cx"}})
	cd := mkMapping("C", "D", 1, [][2]string{{"cx", "dx"}})
	g := &graphSource{out: map[string][]schema.Mapping{
		"A": {ab}, "B": {bc}, "C": {cd},
	}}
	e, err := Build(context.Background(), g.source(), "A#x", Options{MaxLoss: 0.4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(e.Targets) != 1 || e.Targets[0].Predicate != "B#bx" {
		t.Fatalf("targets = %+v", e.Targets)
	}
	// The pruned branch is never expanded: C's key is not consulted.
	for _, name := range g.consults {
		if name == "C" {
			t.Errorf("pruned branch was fanned out: consults = %v", g.consults)
		}
	}
	// Without pruning the whole chain is reachable.
	e2, err := Build(context.Background(), g.source(), "A#x", Options{})
	if err != nil {
		t.Fatalf("Build unpruned: %v", err)
	}
	if len(e2.Targets) != 3 {
		t.Errorf("unpruned targets = %+v", e2.Targets)
	}
}

func TestConflictsCounted(t *testing.T) {
	// Both source attributes funnel into one target attribute downstream.
	ab := mkMapping("A", "B", 1, [][2]string{{"x", "bx"}, {"y", "by"}})
	bc := mkMapping("B", "C", 1, [][2]string{{"bx", "c"}, {"by", "c"}})
	g := &graphSource{out: map[string][]schema.Mapping{"A": {ab}, "B": {bc}}}
	e, err := Build(context.Background(), g.source(), "A#x", Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var deep *Target
	for i := range e.Targets {
		if e.Targets[i].SchemaName == "C" {
			deep = &e.Targets[i]
		}
	}
	if deep == nil {
		t.Fatalf("no C target: %+v", e.Targets)
	}
	if deep.Conflicts != 1 {
		t.Errorf("conflicts = %d, want 1 (x and y collapse onto c)", deep.Conflicts)
	}
}

func TestBuildErrorAbortsUncached(t *testing.T) {
	g, _ := chainGraph()
	g.fail = map[string]bool{"B": true}
	c := NewCache()
	if _, _, err := c.GetOrBuild(context.Background(), g.source(), "A#x", Options{}); err == nil {
		t.Fatal("GetOrBuild should surface the retrieval error")
	}
	if st := c.Stats(); st.Entries != 0 || st.Builds != 0 {
		t.Errorf("failed build cached something: %+v", st)
	}
}

func TestCacheHitMissAndIncrementalInvalidation(t *testing.T) {
	g, _ := chainGraph()
	// Second component disjoint from the chain.
	g.out["X"] = []schema.Mapping{mkMapping("X", "Y", 1, [][2]string{{"u", "yu"}})}
	c := NewCache()
	ctx := context.Background()
	if _, built, err := c.GetOrBuild(ctx, g.source(), "A#x", Options{}); err != nil || !built {
		t.Fatalf("first build: built=%v err=%v", built, err)
	}
	if _, built, err := c.GetOrBuild(ctx, g.source(), "X#u", Options{}); err != nil || !built {
		t.Fatalf("second build: built=%v err=%v", built, err)
	}
	if _, built, err := c.GetOrBuild(ctx, g.source(), "A#x", Options{}); err != nil || built {
		t.Fatalf("expected cache hit, built=%v err=%v", built, err)
	}

	// A mapping change at C invalidates the chain entry only.
	if dropped := c.Invalidate("C", "D"); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if _, ok := c.Lookup("X#u", Options{}); !ok {
		t.Error("disjoint entry was invalidated")
	}
	if _, ok := c.Lookup("A#x", Options{}); ok {
		t.Error("chain entry survived invalidation")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 3 || st.Invalidations != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Version != 1 {
		t.Errorf("version = %d, want 1", st.Version)
	}
}

func TestPutIfCurrentRefusesStaleBuild(t *testing.T) {
	g, _ := chainGraph()
	c := NewCache()
	v := c.Version()
	e, err := Build(context.Background(), g.source(), "A#x", Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	e.Version = v
	// The schema graph moves while the build is in flight.
	c.Invalidate("B")
	if c.PutIfCurrent(e) {
		t.Fatal("stale build was installed")
	}
	if _, ok := c.Lookup("A#x", e.Options); ok {
		t.Fatal("stale entry is being served")
	}
}

func TestOptionsKeySeparation(t *testing.T) {
	g, _ := chainGraph()
	c := NewCache()
	ctx := context.Background()
	if _, _, err := c.GetOrBuild(ctx, g.source(), "A#x", Options{MaxDepth: 2}); err != nil {
		t.Fatalf("GetOrBuild: %v", err)
	}
	// Different depth bound: separate closure, not a hit.
	if _, built, err := c.GetOrBuild(ctx, g.source(), "A#x", Options{MaxDepth: 3}); err != nil || !built {
		t.Fatalf("built=%v err=%v; distinct options must not share entries", built, err)
	}
}

func TestBuildNonSchemaPredicate(t *testing.T) {
	if _, err := Build(context.Background(), (&graphSource{}).source(), "plainpred", Options{}); err == nil {
		t.Fatal("expected an error for a predicate without '#'")
	}
}
