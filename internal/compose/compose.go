// Package compose maintains composite-mapping closures over the schema
// graph: the transitive mapping chains reachable from a queried predicate,
// precomposed into single composite mappings ("Composition and Inversion of
// Schema Mappings") and weighted with the mapping confidences the Bayesian
// cycle analysis refreshes, so reformulation becomes one cached lookup
// instead of a per-query breadth-first walk of the mapping network.
//
// Build replicates the mediation layer's iterative BFS exactly — same
// visited-set claims, same wave order, same confidence gate — so a closure's
// targets enumerate precisely the reformulations the traversal would have
// produced, making the BFS the equivalence oracle for the cache. On top of
// the traversal, each target carries its composed attribute correspondences
// with conflict and loss tracking, and branches whose accumulated attribute
// loss exceeds Options.MaxLoss are pruned before any fan-out ("Managing
// Semantic Loss during Query Reformulation").
//
// The package depends only on the schema model: callers supply the mapping
// retrieval as a MappingSource closure, so the engine is testable without an
// overlay and the mediation layer can charge retrieval messages honestly.
package compose

import (
	"context"
	"fmt"

	"gridvine/internal/schema"
)

// Options tunes a closure build and keys its cache entry.
type Options struct {
	// MaxDepth bounds the mapping-path length. Default 5 (the mediation
	// layer's SearchOptions default).
	MaxDepth int
	// MinConfidence prunes chains whose composed confidence falls below it.
	// Default 0.05.
	MinConfidence float64
	// MaxLoss prunes chains whose attribute loss (see Target.Loss) exceeds
	// it, before the chain fans out further. 0 selects 1 — no pruning, the
	// full-recall mode whose targets match the BFS exactly.
	MaxLoss float64
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 5
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 0.05
	}
	if o.MaxLoss == 0 {
		o.MaxLoss = 1
	}
	return o
}

// MappingSource retrieves the active outgoing mappings of a schema (the
// mediation layer's MappingsFrom: mappings stored at the schema's key whose
// source is the schema, plus reverses of bidirectional equivalences), along
// with the overlay message cost of the retrieval. A MappingSource error
// aborts the build — a truncated closure must never be cached.
type MappingSource func(ctx context.Context, schemaName string) ([]schema.Mapping, int, error)

// Target is one precomposed reformulation destination: a predicate reachable
// from the closure's source predicate through a chain of mappings, collapsed
// into a single composite mapping.
type Target struct {
	// Predicate is the reformulated Schema#Attr URI.
	Predicate string
	// SchemaName and Attr split Predicate.
	SchemaName string
	Attr       string
	// Path lists the IDs of the mappings composed to reach the predicate, in
	// traversal order — identical to the MappingPath the BFS reports.
	Path []string
	// Confidence is the product of the chained mappings' confidences.
	Confidence float64
	// Composed is the chain collapsed into one mapping (source schema →
	// target schema): only attribute correspondences that survive every hop
	// remain, with per-correspondence confidences multiplied.
	Composed schema.Mapping
	// Loss is the fraction of the chain's first hop's source attributes that
	// no longer survive the full composition — 0 for a depth-1 target, and
	// growing as hops drop correspondences.
	Loss float64
	// Conflicts counts correspondence collisions in the composed mapping:
	// source attributes translated to several targets, or several sources
	// collapsing onto one target attribute.
	Conflicts int
	// Depth is the chain length (len(Path)).
	Depth int
}

// Entry is one cached closure: every target reachable from Source under the
// entry's options, plus the bookkeeping invalidation and accounting need.
// Entries are immutable once built; concurrent readers share them.
type Entry struct {
	// Source is the predicate URI the closure was built for.
	Source string
	// Options are the (defaulted) options the closure was built under.
	Options Options
	// Targets lists the reachable predicates in BFS wave order — the order
	// the iterative traversal claims them, which keeps composite
	// reformulation's emission order identical to the BFS's.
	Targets []Target
	// Touched lists the schema names whose key spaces the build consulted,
	// sorted. A mapping publish or replace whose source or target schema is
	// in this set may change the closure; anything else cannot (a mapping is
	// only retrievable from its source key, or its target key when
	// bidirectional), so invalidation is exact on this set.
	Touched []string
	// Version is the cache version the build started from; Cache.PutIfCurrent
	// refuses the entry if the schema graph moved during the build.
	Version uint64
	// BuildMessages is the overlay message cost of the mapping retrievals
	// the build issued.
	BuildMessages int
	// Reformulations counts the visited-set claims of the traversal —
	// exactly the Reformulations counter the BFS would have reported.
	Reformulations int
}

// frontier is one BFS wave item: a predicate reached through a chain, with
// the chain's running composition.
type frontier struct {
	schemaName string
	attr       string
	path       []string
	confidence float64
	composed   schema.Mapping // chain collapsed so far (zero at the root)
	first      schema.Mapping // the chain's first hop (loss baseline)
}

// Build computes the closure of a predicate: the breadth-first traversal of
// the mapping graph the mediation layer's iterative reformulation performs,
// with each reached predicate's chain collapsed into a composite mapping.
// The traversal claims predicates in wave order under the same confidence
// gate as the BFS, so with MaxLoss unset the targets are exactly the BFS's
// reformulations. Any retrieval error aborts the build.
func Build(ctx context.Context, src MappingSource, predicate string, opts Options) (*Entry, error) {
	opts = opts.withDefaults()
	schemaName, attr, ok := schema.SplitPredicateURI(predicate)
	if !ok {
		return nil, fmt.Errorf("compose: predicate %q is not Schema#Attr", predicate)
	}
	e := &Entry{Source: predicate, Options: opts}
	visited := map[string]bool{predicate: true}
	touched := map[string]bool{}
	wave := []frontier{{schemaName: schemaName, attr: attr, confidence: 1}}
	for len(wave) > 0 {
		var next []frontier
		for _, it := range wave {
			if len(it.path) >= opts.MaxDepth {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			mappings, msgs, err := src(ctx, it.schemaName)
			e.BuildMessages += msgs
			touched[it.schemaName] = true
			if err != nil {
				return nil, fmt.Errorf("compose: retrieving mappings of %s: %w", it.schemaName, err)
			}
			for _, m := range mappings {
				targetAttr, ok := m.TranslateAttr(it.attr)
				if !ok {
					continue
				}
				conf := it.confidence * m.Confidence
				if conf < opts.MinConfidence {
					continue
				}
				newPred := m.Target + "#" + targetAttr
				if visited[newPred] {
					continue
				}
				composed, first := m, m
				if len(it.path) > 0 {
					first = it.first
					var err error
					if composed, err = it.composed.Compose(m); err != nil {
						continue // impossible by construction: it.composed targets m.Source
					}
				}
				loss := lossOf(first, composed)
				if loss > opts.MaxLoss {
					continue // pruned before claiming or fanning out
				}
				visited[newPred] = true
				e.Reformulations++
				path := append(append([]string{}, it.path...), m.ID)
				e.Targets = append(e.Targets, Target{
					Predicate:  newPred,
					SchemaName: m.Target,
					Attr:       targetAttr,
					Path:       path,
					Confidence: conf,
					Composed:   composed,
					Loss:       loss,
					Conflicts:  conflictsOf(composed),
					Depth:      len(path),
				})
				next = append(next, frontier{
					schemaName: m.Target,
					attr:       targetAttr,
					path:       path,
					confidence: conf,
					composed:   composed,
					first:      first,
				})
			}
		}
		wave = next
	}
	e.Touched = sortedKeys(touched)
	return e, nil
}

// lossOf measures how much of the chain's initial translation capability the
// full composition retains: 1 − (distinct source attributes of the composed
// mapping) / (distinct source attributes of the chain's first hop).
func lossOf(first, composed schema.Mapping) float64 {
	base := distinctSourceAttrs(first)
	if base == 0 {
		return 0
	}
	return 1 - float64(distinctSourceAttrs(composed))/float64(base)
}

func distinctSourceAttrs(m schema.Mapping) int {
	seen := map[string]bool{}
	for _, c := range m.Correspondences {
		seen[c.SourceAttr] = true
	}
	return len(seen)
}

// conflictsOf counts correspondence collisions: every correspondence beyond
// the first sharing a source attribute (ambiguous translation) or a target
// attribute (several sources collapsing onto one target).
func conflictsOf(m schema.Mapping) int {
	bySrc := map[string]int{}
	byTgt := map[string]int{}
	for _, c := range m.Correspondences {
		bySrc[c.SourceAttr]++
		byTgt[c.TargetAttr]++
	}
	n := 0
	for _, k := range bySrc {
		if k > 1 {
			n += k - 1
		}
	}
	for _, k := range byTgt {
		if k > 1 {
			n += k - 1
		}
	}
	return n
}
