// Self-organization: the §3–§4 maintenance loop in action. Schemas start
// almost unconnected; the organizer monitors the connectivity indicator,
// creates mappings automatically from shared instance references (aligned
// with lexical + set-distance measures), and the Bayesian cycle analysis
// deprecates a deliberately planted erroneous mapping.
//
//	go run ./examples/selforganization
package main

import (
	"context"
	"fmt"
	"log"

	"gridvine"
	"gridvine/internal/bioworkload"
)

func main() {
	w := bioworkload.Generate(bioworkload.Config{Schemas: 8, Entities: 60, Seed: 11})
	net, err := gridvine.NewNetwork(gridvine.Options{Peers: 32, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	ctx := context.Background()

	for _, t := range w.Triples() {
		if _, err := net.RandomPeer().InsertTripleContext(ctx, t); err != nil {
			log.Fatal(err)
		}
	}

	org, err := net.NewOrganizer(net.Peer(0), gridvine.OrganizerOptions{
		Domain:              w.Domain,
		MaxMappingsPerRound: 4,
		Seed:                13,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range w.Schemas {
		if err := org.RegisterSchema(ctx, info.Schema); err != nil {
			log.Fatal(err)
		}
	}

	// One manual seed mapping plus one deliberately WRONG mapping: its
	// correspondences cross concepts (organism ↔ accession), so cycles
	// through it will not compose to the identity.
	seeds := w.SeedMappings(1)
	if len(seeds) > 0 {
		net.Peer(0).InsertMappingContext(ctx, seeds[0])
	}
	a, b := w.Schemas[2], w.Schemas[4]
	wrong := gridvine.NewAutomaticMapping(a.Schema.Name, b.Schema.Name, map[string]string{
		a.ConceptAttr["organism"]:  b.ConceptAttr["accession"],
		a.ConceptAttr["accession"]: b.ConceptAttr["organism"],
	}, 0.8)
	net.Peer(0).InsertMappingContext(ctx, wrong)
	fmt.Printf("seeded 1 correct mapping and 1 planted-wrong mapping (%s ↔ %s)\n\n",
		a.Schema.Name, b.Schema.Name)

	subjects := w.Subjects()
	for round := 1; round <= 6; round++ {
		r, err := org.Round(ctx, subjects)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: ci %+0.2f → %+0.2f, created %d, deprecated %d (cycles evaluated: %d)\n",
			round, r.CIBefore, r.CIAfter, len(r.Created), len(r.Deprecated), r.Evidence)
		for _, m := range r.Created {
			fmt.Printf("    + %s\n", m)
		}
		for _, id := range r.Deprecated {
			marker := ""
			if id == wrong.ID {
				marker = "   ← the planted-wrong mapping"
			}
			fmt.Printf("    − deprecated %s%s\n", id, marker)
		}
	}

	ms, err := org.GatherMappings(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal state: %d active mappings, %d deprecated\n",
		len(ms.Active()), ms.Len()-len(ms.Active()))
	if got, ok := ms.Get(wrong.ID); ok && got.Deprecated {
		fmt.Println("the planted-wrong mapping was detected and deprecated ✓")
	} else {
		fmt.Println("the planted-wrong mapping survived (increase rounds or cycle budget)")
	}
}
