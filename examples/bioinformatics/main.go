// Bioinformatics: the demonstration workload of paper §4 — heterogeneous
// protein/nucleotide schemas built from a shared concept pool, overlapping
// entity coverage (shared references), ground-truth mappings, and recall
// measurement against the known ground truth.
//
//	go run ./examples/bioinformatics
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"gridvine"
	"gridvine/internal/bioworkload"
)

func main() {
	// A 12-schema slice of the 50-schema demonstration: enough to see
	// heterogeneity without minutes of output.
	w := bioworkload.Generate(bioworkload.Config{Schemas: 12, Entities: 80, Seed: 3})
	fmt.Printf("workload: %d schemas, %d entities, %d triples\n",
		len(w.Schemas), len(w.Entities), len(w.Triples()))

	// Show the heterogeneity: the same concept under different names.
	fmt.Println("\nthe 'organism' concept across schemas:")
	for _, info := range w.Schemas[:6] {
		fmt.Printf("  %-10s → %s\n", info.Schema.Name, info.Schema.PredicateURI(info.ConceptAttr["organism"]))
	}

	net, err := gridvine.NewNetwork(gridvine.Options{Peers: 48, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	// Bulk-assimilate the whole source — triples, schema definitions, and
	// the ground-truth manual mappings connecting every schema to the next —
	// as one batched write: the engine groups the index keys by responsible
	// peer and ships one message per destination instead of three routed
	// updates per triple.
	batch := &gridvine.Batch{}
	for _, t := range w.Triples() {
		batch.InsertTriple(t)
	}
	for _, info := range w.Schemas {
		batch.PublishSchema(info.Schema)
	}
	for _, m := range w.SeedMappings(len(w.Schemas) - 1) {
		batch.PublishMapping(m)
	}
	ctx := context.Background()
	receipt, err := net.Peer(0).Write(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	if receipt.Applied != batch.Len() {
		log.Fatalf("bulk load applied %d of %d entries: %v", receipt.Applied, batch.Len(), receipt.FirstErr())
	}
	fmt.Printf("\nbulk load: %d entries applied in %d grouped shipments (%d overlay messages)\n",
		receipt.Applied, receipt.Groups, receipt.Messages())

	// Measure recall on a query mix: without reformulation queries only see
	// one schema's share of the data; with reformulation they aggregate it
	// all through the mapping chain.
	rng := rand.New(rand.NewSource(5))
	queries := w.Queries(30, rng)
	var plain, reformulated float64
	for _, q := range queries {
		if rs, err := search(ctx, net.RandomPeer(), q.Pattern, false); err == nil {
			plain += q.Recall(rs.Triples())
		}
		if rs, err := search(ctx, net.RandomPeer(), q.Pattern, true); err == nil {
			reformulated += q.Recall(rs.Triples())
		}
	}
	n := float64(len(queries))
	fmt.Printf("\nmean recall over %d queries:\n", len(queries))
	fmt.Printf("  without reformulation: %.2f\n", plain/n)
	fmt.Printf("  with reformulation:    %.2f\n", reformulated/n)

	// One concrete conjunctive query over a single schema.
	info := w.Schemas[0]
	orgAttr := info.ConceptAttr["organism"]
	accAttr := info.ConceptAttr["accession"]
	patterns := []gridvine.Pattern{
		{S: gridvine.Var("x"), P: gridvine.Const(info.Schema.PredicateURI(orgAttr)), O: gridvine.Like("%Aspergillus%")},
		{S: gridvine.Var("x"), P: gridvine.Const(info.Schema.PredicateURI(accAttr)), O: gridvine.Var("acc")},
	}
	cur, err := net.Peer(1).Query(ctx, gridvine.Request{Patterns: patterns})
	if err != nil {
		log.Fatal(err)
	}
	set, _, err := gridvine.CollectSet(ctx, cur)
	if err != nil {
		log.Fatal(err)
	}
	bindings := set.ToBindings()
	fmt.Printf("\nAspergillus entries in %s with accessions: %d\n", info.Schema.Name, len(bindings))
	for i, b := range bindings {
		if i >= 5 {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  %s (accession %s)\n", b["x"], b["acc"])
	}
}

// search resolves one pattern query — optionally reformulating through the
// mapping network — and drains the cursor into the aggregate ResultSet.
func search(ctx context.Context, p *gridvine.Peer, q gridvine.Pattern, reformulate bool) (*gridvine.ResultSet, error) {
	cur, err := p.Query(ctx, gridvine.Request{Pattern: &q, Reformulate: reformulate})
	if err != nil {
		return nil, err
	}
	return gridvine.CollectPattern(ctx, cur)
}
