// Streaming queries: the context-aware query surface end to end.
//
// One entry point — Peer.Query(ctx, Request) — serves every query shape
// and returns a Cursor that yields rows as reformulation waves and join
// stages complete. This program walks through the three behaviours the
// blocking API could not express:
//
//  1. incremental consumption: rows arrive while deeper reformulation
//     waves are still fanning out (time-to-first-row ≪ full wall-clock);
//
//  2. LIMIT / top-k: the engine stops issuing overlay lookups once enough
//     rows exist;
//
//  3. deadlines: an expired context stops the fan-out mid-wave and
//     returns the rows already produced plus context.DeadlineExceeded.
//
// Run it with:
//
//	go run ./examples/streaming
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"gridvine"
)

func main() {
	net, err := gridvine.NewNetwork(gridvine.Options{Peers: 32, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	p := net.Peer(0)

	// A chain of four schemas bridged by mappings: a query against
	// S0#organism reformulates wave by wave to S1, S2, S3. Data and
	// mappings ship together as one batched Write.
	batch := &gridvine.Batch{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("S%d", i)
		for e := 0; e < 5; e++ {
			batch.InsertTriple(gridvine.Triple{
				Subject:   fmt.Sprintf("acc:%s-%d", name, e),
				Predicate: name + "#organism",
				Object:    fmt.Sprintf("Aspergillus strain %d", e),
			})
		}
		if i < 3 {
			batch.PublishMapping(gridvine.NewManualMapping(
				name, fmt.Sprintf("S%d", i+1), map[string]string{"organism": "organism"}))
		}
	}
	if rec, err := p.Write(context.Background(), batch); err != nil {
		log.Fatal(err)
	} else if rec.Applied != batch.Len() {
		log.Fatalf("batch applied %d of %d entries: %v", rec.Applied, batch.Len(), rec.FirstErr())
	}
	// Make the overlay behave like a real network so streaming shows.
	net.Transport().SetSendDelay(2 * time.Millisecond)

	q := gridvine.Pattern{
		S: gridvine.Var("x"), P: gridvine.Const("S0#organism"), O: gridvine.Var("org"),
	}
	issuer := net.Peer(17)

	// 1. Incremental consumption: first rows land before the traversal is
	// anywhere near done.
	cur, err := issuer.Query(context.Background(), gridvine.Request{Pattern: &q, Reformulate: true})
	if err != nil {
		log.Fatal(err)
	}
	rows := 0
	for {
		row, ok := cur.Next(context.Background())
		if !ok {
			break
		}
		rows++
		if rows == 1 {
			fmt.Printf("first row after %v: %v (schema %s)\n",
				cur.Stats().FirstRow.Round(time.Millisecond),
				row.Values, row.Result.Pattern.P.Value)
		}
	}
	cur.Close()
	st := cur.Stats()
	fmt.Printf("full answer: %d rows in %v (%d reformulations, %d messages)\n\n",
		st.Rows, st.Elapsed.Round(time.Millisecond), st.Reformulations, st.Messages)

	// 2. LIMIT: top-3 stops the fan-out once satisfied — compare message
	// counts with the full run above.
	cur, err = issuer.Query(context.Background(), gridvine.Request{
		Pattern: &q, Reformulate: true, Limit: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for {
		if _, ok := cur.Next(context.Background()); !ok {
			break
		}
	}
	cur.Close()
	fmt.Printf("LIMIT 3: %d rows, %d messages (vs %d unbounded)\n\n",
		cur.Stats().Rows, cur.Stats().Messages, st.Messages)

	// RDQL carries the same limit in-language.
	rcur, err := issuer.Query(context.Background(), gridvine.Request{
		RDQL: `SELECT ?x WHERE (?x, <S0#organism>, "%Aspergillus%") LIMIT 2`,
	})
	if err != nil {
		log.Fatal(err)
	}
	rdqlRows, _, err := gridvine.CollectRows(context.Background(), rcur)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RDQL LIMIT 2: %v\n\n", rdqlRows)

	// 3. Deadline: 12ms is enough for the first waves, not the whole
	// traversal — partial rows come back with context.DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), 12*time.Millisecond)
	defer cancel()
	cur, err = issuer.Query(ctx, gridvine.Request{Pattern: &q, Reformulate: true})
	if err != nil {
		log.Fatal(err)
	}
	partial := 0
	for {
		if _, ok := cur.Next(context.Background()); !ok {
			break
		}
		partial++
	}
	cur.Close()
	if errors.Is(cur.Err(), context.DeadlineExceeded) {
		fmt.Printf("deadline expired: %d of %d rows arrived in time, err = %v\n",
			partial, st.Rows, cur.Err())
	} else {
		fmt.Printf("traversal beat the deadline: %d rows, err = %v\n", partial, cur.Err())
	}
}
