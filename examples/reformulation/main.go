// Reformulation: the paper's Figure 2 walk-through, step by step.
//
// A query posed against EMBL#Organism is reformulated through the schema
// mapping EMBL#Organism ↔ EMP#SystematicName and aggregates results from
// both schemas:
//
//	SearchFor(x1? : (x1?, EMBL#Organism, %Aspergillus%))
//	 1) Search for schema mapping  EMBL#Organism ↔ EMP#SystematicName
//	 2) Reformulate query          SearchFor(x2? : (x2?, EMP#SystematicName, %Aspergillus%))
//	 3) Aggregate results          x1 = {EMBL:A78712, EMBL:A78767}, x2 = NEN94295-05
//
//	go run ./examples/reformulation
package main

import (
	"fmt"
	"log"

	"gridvine"
)

func main() {
	net, err := gridvine.NewNetwork(gridvine.Options{Peers: 16, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	p := net.Peer(0)

	// The figure's data: two nucleotide sequences described under EMBL, one
	// protein entry described under EMP.
	for _, t := range []gridvine.Triple{
		{Subject: "EMBL:A78712", Predicate: "EMBL#Organism", Object: "Aspergillus nidulans"},
		{Subject: "EMBL:A78767", Predicate: "EMBL#Organism", Object: "Aspergillus niger"},
		{Subject: "NEN94295-05", Predicate: "EMP#SystematicName", Object: "Aspergillus flavus"},
	} {
		if _, err := p.InsertTriple(t); err != nil {
			log.Fatal(err)
		}
	}
	mapping := gridvine.NewManualMapping("EMBL", "EMP",
		map[string]string{"Organism": "SystematicName"})
	if _, err := p.InsertMapping(mapping); err != nil {
		log.Fatal(err)
	}

	query := gridvine.Pattern{
		S: gridvine.Var("x1"),
		P: gridvine.Const("EMBL#Organism"),
		O: gridvine.Like("%Aspergillus%"),
	}
	fmt.Printf("SearchFor(x1? : %v)\n\n", query)

	// Both strategies of §4 — iterative (issuer reformulates) and recursive
	// (intermediate peers reformulate) — return the same aggregate.
	for _, mode := range []gridvine.SearchOptions{
		{Mode: gridvine.Iterative},
		{Mode: gridvine.Recursive},
	} {
		rs, err := net.Peer(11).SearchWithReformulation(query, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v reformulation: %d reformulations, %d messages\n",
			mode.Mode, rs.Reformulations, rs.Messages)
		for _, r := range rs.Results {
			step := "original query"
			if len(r.MappingPath) > 0 {
				step = fmt.Sprintf("reformulated via %v", r.MappingPath)
			}
			fmt.Printf("  %-13s ← %-24s (%s)\n", r.Triple.Subject, r.Pattern.P.Value, step)
		}
		fmt.Println()
	}
}
