// Reformulation: the paper's Figure 2 walk-through, step by step.
//
// A query posed against EMBL#Organism is reformulated through the schema
// mapping EMBL#Organism ↔ EMP#SystematicName and aggregates results from
// both schemas:
//
//	SearchFor(x1? : (x1?, EMBL#Organism, %Aspergillus%))
//	 1) Search for schema mapping  EMBL#Organism ↔ EMP#SystematicName
//	 2) Reformulate query          SearchFor(x2? : (x2?, EMP#SystematicName, %Aspergillus%))
//	 3) Aggregate results          x1 = {EMBL:A78712, EMBL:A78767}, x2 = NEN94295-05
//
//	go run ./examples/reformulation
package main

import (
	"context"
	"fmt"
	"log"

	"gridvine"
)

func main() {
	net, err := gridvine.NewNetwork(gridvine.Options{Peers: 16, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	p := net.Peer(0)

	ctx := context.Background()

	// The figure's data: two nucleotide sequences described under EMBL, one
	// protein entry described under EMP, plus the mapping — one batch Write.
	batch := &gridvine.Batch{}
	for _, t := range []gridvine.Triple{
		{Subject: "EMBL:A78712", Predicate: "EMBL#Organism", Object: "Aspergillus nidulans"},
		{Subject: "EMBL:A78767", Predicate: "EMBL#Organism", Object: "Aspergillus niger"},
		{Subject: "NEN94295-05", Predicate: "EMP#SystematicName", Object: "Aspergillus flavus"},
	} {
		batch.InsertTriple(t)
	}
	batch.PublishMapping(gridvine.NewManualMapping("EMBL", "EMP",
		map[string]string{"Organism": "SystematicName"}))
	if rec, err := p.Write(ctx, batch); err != nil {
		log.Fatal(err)
	} else if rec.Applied != batch.Len() {
		log.Fatalf("batch applied %d of %d entries: %v", rec.Applied, batch.Len(), rec.FirstErr())
	}

	query := gridvine.Pattern{
		S: gridvine.Var("x1"),
		P: gridvine.Const("EMBL#Organism"),
		O: gridvine.Like("%Aspergillus%"),
	}
	fmt.Printf("SearchFor(x1? : %v)\n\n", query)

	// Both strategies of §4 — iterative (issuer reformulates) and recursive
	// (intermediate peers reformulate) — return the same aggregate.
	for _, mode := range []gridvine.SearchOptions{
		{Mode: gridvine.Iterative},
		{Mode: gridvine.Recursive},
	} {
		cur, err := net.Peer(11).Query(ctx, gridvine.Request{Pattern: &query, Reformulate: true, Options: mode})
		if err != nil {
			log.Fatal(err)
		}
		rs, err := gridvine.CollectPattern(ctx, cur)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v reformulation: %d reformulations, %d messages\n",
			mode.Mode, rs.Reformulations, rs.Messages)
		for _, r := range rs.Results {
			step := "original query"
			if len(r.MappingPath) > 0 {
				step = fmt.Sprintf("reformulated via %v", r.MappingPath)
			}
			fmt.Printf("  %-13s ← %-24s (%s)\n", r.Triple.Subject, r.Pattern.P.Value, step)
		}
		fmt.Println()
	}
}
