// Quickstart: build a local GridVine network, share triples under two
// heterogeneous schemas, connect them with a mapping, and watch one query
// retrieve results from both through reformulation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gridvine"
)

func main() {
	// A 16-peer network over the in-memory transport (set TCP: true to run
	// the peers on real localhost sockets instead).
	net, err := gridvine.NewNetwork(gridvine.Options{Peers: 16, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	ctx := context.Background()

	// Any peer can insert; each triple is indexed at the overlay by its
	// subject, predicate and object keys. A Batch ships every mutation in
	// one key-grouped Write.
	p := net.Peer(0)
	triples := []gridvine.Triple{
		{Subject: "EMBL:A78712", Predicate: "EMBL#Organism", Object: "Aspergillus nidulans"},
		{Subject: "EMBL:A78712", Predicate: "EMBL#Length", Object: "1422"},
		{Subject: "NEN94295-05", Predicate: "EMP#SystematicName", Object: "Aspergillus flavus"},
	}
	batch := &gridvine.Batch{}
	for _, t := range triples {
		batch.InsertTriple(t)
	}

	// Schemas document the attributes; the mapping makes them interoperable.
	batch.PublishSchema(gridvine.NewSchema("EMBL", "bio", "Organism", "Length"))
	batch.PublishSchema(gridvine.NewSchema("EMP", "bio", "SystematicName"))
	batch.PublishMapping(gridvine.NewManualMapping("EMBL", "EMP",
		map[string]string{"Organism": "SystematicName"}))
	if rec, err := p.Write(ctx, batch); err != nil {
		log.Fatal(err)
	} else if rec.Applied != batch.Len() {
		log.Fatalf("batch applied %d of %d entries: %v", rec.Applied, batch.Len(), rec.FirstErr())
	}

	// Query from a different peer: constrained on the EMBL predicate, LIKE
	// on the object — the paper's running example.
	q := gridvine.Pattern{
		S: gridvine.Var("x"),
		P: gridvine.Const("EMBL#Organism"),
		O: gridvine.Like("%Aspergillus%"),
	}
	cur, err := net.Peer(9).Query(ctx, gridvine.Request{Pattern: &q, Reformulate: true})
	if err != nil {
		log.Fatal(err)
	}
	rs, err := gridvine.CollectPattern(ctx, cur)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query %v → %d results (%d reformulations):\n", q, len(rs.Results), rs.Reformulations)
	for _, r := range rs.Results {
		fmt.Printf("  %s  (from %s, confidence %.2f)\n", r.Triple, r.Pattern.P.Value, r.Confidence)
	}

	// Conjunctive query: join two patterns on the shared variable x.
	patterns := []gridvine.Pattern{
		{S: gridvine.Var("x"), P: gridvine.Const("EMBL#Organism"), O: gridvine.Like("%Aspergillus%")},
		{S: gridvine.Var("x"), P: gridvine.Const("EMBL#Length"), O: gridvine.Var("len")},
	}
	jcur, err := net.Peer(3).Query(ctx, gridvine.Request{Patterns: patterns})
	if err != nil {
		log.Fatal(err)
	}
	set, _, err := gridvine.CollectSet(ctx, jcur)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conjunctive query bindings:")
	for _, b := range set.ToBindings() {
		fmt.Printf("  x=%s len=%s\n", b["x"], b["len"])
	}
}
