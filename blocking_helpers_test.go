package gridvine

import "context"

// Test-side ports of the deprecated blocking search wrappers: facade tests
// and benchmarks exercise Query plus the Collect drain helpers — the
// supported surface — instead of the deprecated methods.

func blockingSearchFor(p *Peer, q Pattern) (*ResultSet, error) {
	ctx := context.Background()
	cur, err := p.Query(ctx, Request{Pattern: &q})
	if err != nil {
		return nil, err
	}
	return CollectPattern(ctx, cur)
}

func blockingSearchReformulated(p *Peer, q Pattern, opts SearchOptions) (*ResultSet, error) {
	ctx := context.Background()
	cur, err := p.Query(ctx, Request{Pattern: &q, Reformulate: true, Options: opts})
	if err != nil {
		return nil, err
	}
	return CollectPattern(ctx, cur)
}

func blockingConjunctive(p *Peer, patterns []Pattern, reformulate bool, opts SearchOptions) ([]Bindings, int, error) {
	ctx := context.Background()
	cur, err := p.Query(ctx, Request{Patterns: patterns, Reformulate: reformulate, Options: opts})
	if err != nil {
		return nil, 0, err
	}
	bs, stats, err := CollectSet(ctx, cur)
	if err != nil {
		return nil, stats.TotalMessages(), err
	}
	return bs.ToBindings(), stats.TotalMessages(), nil
}

func blockingRDQL(p *Peer, query string, reformulate bool, opts SearchOptions) ([]Row, error) {
	ctx := context.Background()
	cur, err := p.Query(ctx, Request{RDQL: query, Reformulate: reformulate, Options: opts})
	if err != nil {
		return nil, err
	}
	rows, _, err := CollectRows(ctx, cur)
	return rows, err
}
